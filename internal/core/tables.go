package core

import (
	"sort"

	"doscope/internal/attack"
	"doscope/internal/dps"
	"doscope/internal/netx"
	"doscope/internal/stats"
	"doscope/internal/webmodel"
)

// Table1Row summarizes one attack-event data set (Table 1).
type Table1Row struct {
	Source   string
	Events   int
	Targets  int
	Slash24s int
	Slash16s int
	ASNs     int
}

// Table1 reproduces Table 1: events, unique targets, /24s, /16s and ASNs
// per data set and combined.
func (ds *Dataset) Table1() []Table1Row {
	row := func(name string, stores ...*attack.Store) Table1Row {
		r := Table1Row{Source: name}
		for _, st := range stores {
			r.Events += st.Len()
		}
		targets := attack.Fold(attack.QueryStores(stores...), newAddrSet,
			func(m map[netx.Addr]struct{}, e *attack.Event) map[netx.Addr]struct{} {
				m[e.Target] = struct{}{}
				return m
			}, mergeAddrSets)
		t24 := make(map[netx.Addr]struct{})
		t16 := make(map[netx.Addr]struct{})
		asns := make(map[uint32]struct{})
		for a := range targets {
			t24[a.Slash24()] = struct{}{}
			t16[a.Slash16()] = struct{}{}
			if ds.Plan != nil {
				if asn, ok := ds.Plan.ASOf(a); ok {
					asns[uint32(asn)] = struct{}{}
				}
			}
		}
		r.Targets = len(targets)
		r.Slash24s = len(t24)
		r.Slash16s = len(t16)
		r.ASNs = len(asns)
		return r
	}
	return []Table1Row{
		row("Network Telescope", ds.Telescope),
		row("Amplification Honeypot", ds.Honeypot),
		row("Combined", ds.Telescope, ds.Honeypot),
	}
}

// Table2Row summarizes the DNS data set for one TLD (Table 2).
type Table2Row struct {
	TLD        string
	WebSites   int
	DataPoints uint64
}

// Table2 reproduces Table 2 from the measurement history: Web sites and
// collected data points per gTLD.
func (ds *Dataset) Table2() []Table2Row {
	rows := make([]Table2Row, webmodel.NumTLDs+1)
	for i := 0; i < webmodel.NumTLDs; i++ {
		rows[i].TLD = "." + webmodel.TLD(i).String()
	}
	rows[webmodel.NumTLDs].TLD = "Combined"
	if ds.History == nil {
		return rows
	}
	for id := 0; id < ds.History.NumDomains(); id++ {
		t := int(ds.History.TLD[id])
		var dp uint64
		for _, s := range ds.History.Segments[id] {
			dp += uint64(s.To-s.From+1) * 2
		}
		if len(ds.History.Segments[id]) > 0 {
			rows[t].WebSites++
			rows[t].DataPoints += dp
		}
	}
	for i := 0; i < webmodel.NumTLDs; i++ {
		rows[webmodel.NumTLDs].WebSites += rows[i].WebSites
		rows[webmodel.NumTLDs].DataPoints += rows[i].DataPoints
	}
	return rows
}

// Table3Row counts the Web sites using one DPS provider (Table 3).
type Table3Row struct {
	Provider string
	WebSites int
}

// Table3 reproduces Table 3: for each provider, the number of Web sites
// observed using it at any point of the window.
func (ds *Dataset) Table3() []Table3Row {
	counts := make(map[dps.Provider]int)
	if ds.History != nil {
		for id := 0; id < ds.History.NumDomains(); id++ {
			seenProv := map[dps.Provider]bool{}
			for _, s := range ds.History.Segments[id] {
				if s.Provider != dps.None && !seenProv[s.Provider] {
					seenProv[s.Provider] = true
					counts[s.Provider]++
				}
			}
		}
	}
	var rows []Table3Row
	for _, p := range dps.All() {
		rows = append(rows, Table3Row{Provider: p.String(), WebSites: counts[p]})
	}
	return rows
}

// CountryRow is one row of Table 4.
type CountryRow struct {
	Country string
	Targets int
	Share   float64
}

// Table4 reproduces Table 4: unique targets per country for one data set,
// top-n rows plus an "Other" aggregate.
func (ds *Dataset) Table4(src attack.Source, topN int) []CountryRow {
	if ds.Plan == nil {
		return nil
	}
	targets := ds.uniqueTargets(int(src))
	counts := make(map[string]int)
	total := 0
	for a := range targets {
		cc, ok := ds.Plan.CountryOf(a)
		name := "??"
		if ok {
			name = cc.String()
		}
		counts[name]++
		total++
	}
	var rows []CountryRow
	for cc, n := range counts {
		rows = append(rows, CountryRow{Country: cc, Targets: n, Share: float64(n) / float64(total)})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Targets > rows[j].Targets })
	if len(rows) <= topN {
		return rows
	}
	other := CountryRow{Country: "Other"}
	for _, r := range rows[topN:] {
		other.Targets += r.Targets
		other.Share += r.Share
	}
	return append(rows[:topN:topN], other)
}

// MixRow is a share of a categorical distribution (Tables 5-7).
type MixRow struct {
	Label  string
	Events int
	Share  float64
}

// Table5 reproduces Table 5: the IP protocol distribution of randomly
// spoofed attacks, answered entirely from the count index.
func (ds *Dataset) Table5() []MixRow {
	counts := ds.Telescope.Query().CountByVector()
	total := ds.Telescope.Len()
	labels := []string{"TCP", "UDP", "ICMP", "Other"}
	rows := make([]MixRow, 4)
	for i := range rows {
		rows[i] = MixRow{Label: labels[i], Events: counts[i], Share: float64(counts[i]) / float64(total)}
	}
	return rows
}

// Table6 reproduces Table 6: the reflection protocol distribution, top 5
// plus Other, answered entirely from the count index.
func (ds *Dataset) Table6() []MixRow {
	counts := ds.Honeypot.Query().CountByVector()
	total := ds.Honeypot.Len()
	var rows []MixRow
	for v := attack.Vector(0); int(v) < attack.NumVectors; v++ {
		if n := counts[v]; n > 0 {
			rows = append(rows, MixRow{Label: v.String(), Events: n, Share: float64(n) / float64(total)})
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Events > rows[j].Events })
	if len(rows) > 5 {
		other := MixRow{Label: "Other"}
		for _, r := range rows[5:] {
			other.Events += r.Events
			other.Share += r.Share
		}
		rows = append(rows[:5:5], other)
	}
	return rows
}

// Table7 reproduces Table 7: single- vs multi-port randomly spoofed
// attacks (events without port information, e.g. ICMP floods, are
// excluded, as in the paper's TCP/UDP port analysis).
func (ds *Dataset) Table7() []MixRow {
	type agg struct{ single, multi int }
	a := attack.Fold(ds.Telescope.Query(),
		func() agg { return agg{} },
		func(a agg, e *attack.Event) agg {
			switch {
			case len(e.Ports) == 0:
			case e.SinglePort():
				a.single++
			default:
				a.multi++
			}
			return a
		},
		func(a, b agg) agg { return agg{a.single + b.single, a.multi + b.multi} })
	total := a.single + a.multi
	return []MixRow{
		{Label: "single-port", Events: a.single, Share: float64(a.single) / float64(total)},
		{Label: "multi-port", Events: a.multi, Share: float64(a.multi) / float64(total)},
	}
}

// Table8 reproduces Table 8: the top-5 targeted services among single-port
// attacks of the given transport protocol, plus Other. The vector filter
// prunes shards before the scan.
func (ds *Dataset) Table8(vec attack.Vector, topN int) []MixRow {
	counts := make(map[string]int)
	total := 0
	for e := range ds.Telescope.Query().Vectors(vec).Iter() {
		if !e.SinglePort() {
			continue
		}
		counts[attack.ServiceName(vec, e.Ports[0])]++
		total++
	}
	var rows []MixRow
	for svc, n := range counts {
		rows = append(rows, MixRow{Label: svc, Events: n, Share: float64(n) / float64(total)})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Events != rows[j].Events {
			return rows[i].Events > rows[j].Events
		}
		return rows[i].Label < rows[j].Label
	})
	if len(rows) > topN {
		other := MixRow{Label: "Other"}
		for _, r := range rows[topN:] {
			other.Events += r.Events
			other.Share += r.Share
		}
		rows = append(rows[:topN:topN], other)
	}
	return rows
}

// Table9Result gives the normalized attack intensity at selected
// percentiles of the attacked-Web-site distribution (Table 9).
type Table9Result struct {
	Percentiles []float64
	Intensity   []float64
}

// Table9 reproduces Table 9. Per attacked Web site the highest normalized
// intensity over its attacks is used; intensities are log-normalized onto
// [0,1] within their own data set, and for sites attacked in both data
// sets the higher value wins (as in the paper).
func (ds *Dataset) Table9() Table9Result {
	j := ds.webJoinResult()
	var norm []float64
	for id, n := range j.attacksPerSite {
		if n > 0 {
			norm = append(norm, j.maxNorm[id])
		}
	}
	cdf := stats.NewCDF(norm)
	ps := []float64{11.1, 50, 95, 97.5, 99, 99.9, 100}
	res := Table9Result{Percentiles: ps}
	for _, p := range ps {
		res.Intensity = append(res.Intensity, cdf.Quantile(p/100))
	}
	return res
}

package core

import (
	"doscope/internal/attack"
	"doscope/internal/netx"
	"doscope/internal/stats"
)

// webJoin is the §5 join between attack events and the DNS measurement
// history: per-site attack aggregates and the daily Web-impact series,
// computed in a single pass over the fused, time-ordered event stream.
type webJoin struct {
	// Per-site aggregates (indexed by domain id).
	attacksPerSite  []int32
	firstAttackDay  []int32
	maxNorm         []float64 // max log-normalized intensity over attacks
	maxRawIntensity []float64 // max raw intensity (per-dataset units)
	maxPctSite      []float64 // max per-dataset intensity percentile
	longestHpSecs   []int64   // longest honeypot attack duration

	// Daily unique sites on attacked addresses (all and medium+ events).
	dailyAll *stats.Daily
	dailyMed *stats.Daily

	// Figure 6: per unique attacked Web-hosting IP, the co-hosting count
	// at the time of its first attack.
	cohost []int
	// Unique target addresses across both data sets.
	uniqueTargets int
	// Sites with at least one observed segment (the measured namespace).
	aliveSites int
}

// webJoinResult computes the attack x DNS join once per store version:
// Figure5/Figure6/Figure7 chained in one run share the result, and an
// Add to either attack store (which bumps Store.Version) invalidates it.
func (ds *Dataset) webJoinResult() *webJoin {
	ds.refreshCaches()
	if ds.join != nil {
		return ds.join
	}
	rev := ds.reverseIndex()
	nd := 0
	if ds.History != nil {
		nd = ds.History.NumDomains()
	}
	j := &webJoin{
		attacksPerSite:  make([]int32, nd),
		firstAttackDay:  make([]int32, nd),
		maxNorm:         make([]float64, nd),
		maxRawIntensity: make([]float64, nd),
		maxPctSite:      make([]float64, nd),
		longestHpSecs:   make([]int64, nd),
		dailyAll:        stats.NewDaily(ds.WindowDays),
		dailyMed:        stats.NewDaily(ds.WindowDays),
	}
	ds.join = j
	if nd == 0 {
		return j
	}
	for i := range j.firstAttackDay {
		j.firstAttackDay[i] = -1
	}
	for id := 0; id < nd; id++ {
		if len(ds.History.Segments[id]) > 0 {
			j.aliveSites++
		}
	}

	// Normalization constants: intensities scale linearly onto [0,1]
	// within their own data set (Table 9's normalized intensity; linear
	// scaling is what makes the distribution bottom-heavy, with 95% of
	// sites below ~0.07).
	ds.intensityStats()
	telDen, hpDen := 1.0, 1.0
	if n := len(ds.telPct); n > 0 && ds.telPct[n-1] > 0 {
		telDen = ds.telPct[n-1]
	}
	if n := len(ds.hpPct); n > 0 && ds.hpPct[n-1] > 0 {
		hpDen = ds.hpPct[n-1]
	}

	stampAll := make([]int32, nd)
	stampMed := make([]int32, nd)
	for i := range stampAll {
		stampAll[i], stampMed[i] = -1, -1
	}
	type ipState struct {
		seen      bool
		anyTarget bool
	}
	firstSeen := make(map[netx.Addr]*ipState)

	// Consume both event streams merged in start-time order (the shard-
	// aligned k-way merge) so the daily stamps are correct.
	for e := range ds.All().IterByStart() {
		day := e.Day()
		if day < 0 || day >= ds.WindowDays {
			continue
		}
		st := firstSeen[e.Target]
		if st == nil {
			st = &ipState{}
			firstSeen[e.Target] = st
		}
		var norm float64
		if e.Source == attack.SourceTelescope {
			norm = e.MaxPPS / telDen
		} else {
			norm = e.AvgRPS / hpDen
		}
		pct := ds.IntensityPercentile(e)
		med := ds.MediumPlus(e)
		sites := 0
		rev.ForEachSiteOn(e.Target, day, func(id uint32) {
			sites++
			j.attacksPerSite[id]++
			if j.firstAttackDay[id] < 0 || int32(day) < j.firstAttackDay[id] {
				j.firstAttackDay[id] = int32(day)
			}
			if norm > j.maxNorm[id] {
				j.maxNorm[id] = norm
			}
			if pct > j.maxPctSite[id] {
				j.maxPctSite[id] = pct
			}
			if e.Intensity() > j.maxRawIntensity[id] {
				j.maxRawIntensity[id] = e.Intensity()
			}
			if e.Source == attack.SourceHoneypot && e.Duration() > j.longestHpSecs[id] {
				j.longestHpSecs[id] = e.Duration()
			}
			if stampAll[id] != int32(day) {
				stampAll[id] = int32(day)
				j.dailyAll.Add(day, 1)
			}
			if med && stampMed[id] != int32(day) {
				stampMed[id] = int32(day)
				j.dailyMed.Add(day, 1)
			}
		})
		if !st.seen && sites > 0 {
			st.seen = true
			j.cohost = append(j.cohost, sites)
		}
	}
	j.uniqueTargets = len(firstSeen)
	return j
}

// WebImpact summarizes the §5 headline numbers.
type WebImpact struct {
	// SitesEverAttacked is the number of Web sites hosted on an attacked
	// IP at attack time at least once (the paper's 134M / 64%).
	SitesEverAttacked int
	AliveSites        int
	AttackedFraction  float64
	// DailyAvgSites and DailyAvgFraction reproduce the ~4M/day (~3%).
	DailyAvgSites    float64
	DailyAvgFraction float64
	// MediumDailyAvgSites reproduces the 1.7M/day medium+ series.
	MediumDailyAvgSites float64
	// WebTargetIPs is the number of unique target IPs hosting at least
	// one site (572k, ~9% of targets); TotalTargetIPs the 6.34M.
	WebTargetIPs   int
	TotalTargetIPs int
	// TCPShareOnWeb / WebPortShareOnWeb / NTPShareOnWeb reproduce the §5
	// "isolating Web targets" paragraph (93.4%, 87.6%, 54.69%).
	TCPShareOnWeb     float64
	WebPortShareOnWeb float64
	NTPShareOnWeb     float64
}

// WebImpactStats computes the §5 aggregates.
func (ds *Dataset) WebImpactStats() WebImpact {
	j := ds.webJoinResult()
	rev := ds.reverseIndex()
	var w WebImpact
	for _, n := range j.attacksPerSite {
		if n > 0 {
			w.SitesEverAttacked++
		}
	}
	w.AliveSites = j.aliveSites
	if w.AliveSites > 0 {
		w.AttackedFraction = float64(w.SitesEverAttacked) / float64(w.AliveSites)
	}
	w.DailyAvgSites = j.dailyAll.Mean()
	if w.AliveSites > 0 {
		w.DailyAvgFraction = w.DailyAvgSites / float64(w.AliveSites)
	}
	w.MediumDailyAvgSites = j.dailyMed.Mean()
	w.WebTargetIPs = len(j.cohost)
	w.TotalTargetIPs = j.uniqueTargets

	tcp, webPort, telWeb := 0, 0, 0
	for e := range ds.Telescope.Query().Iter() {
		if rev == nil || !rev.HasAddr(e.Target) {
			continue
		}
		telWeb++
		if e.Vector == attack.VectorTCP {
			tcp++
			if e.SinglePort() && attack.WebPort(e.Ports[0]) {
				webPort++
			} else if !e.SinglePort() {
				for _, p := range e.Ports {
					if attack.WebPort(p) {
						webPort++
						break
					}
				}
			}
		}
	}
	if telWeb > 0 {
		w.TCPShareOnWeb = float64(tcp) / float64(telWeb)
		w.WebPortShareOnWeb = float64(webPort) / float64(telWeb)
	}
	ntp, hpWeb := 0, 0
	for e := range ds.Honeypot.Query().Iter() {
		if rev == nil || !rev.HasAddr(e.Target) {
			continue
		}
		hpWeb++
		if e.Vector == attack.VectorNTP {
			ntp++
		}
	}
	if hpWeb > 0 {
		w.NTPShareOnWeb = float64(ntp) / float64(hpWeb)
	}
	return w
}

// Package core implements the paper's primary contribution: the data
// fusion framework that integrates the telescope and honeypot attack
// event data sets with target metadata (geolocation, prefix-to-AS), the
// active DNS measurement history, and the DPS-use data set, and derives
// every analysis of §4 (attack events), §5 (effect on the Web) and §6
// (DPS migration) — one method per table and figure.
package core

import (
	"sort"

	"doscope/internal/attack"
	"doscope/internal/ipmeta"
	"doscope/internal/netx"
	"doscope/internal/openintel"
)

// Dataset bundles the fused data sources. Telescope and Honeypot are
// required; Plan enables geo/ASN enrichment; History enables the §5/§6
// Web analyses.
type Dataset struct {
	Telescope  *attack.Store
	Honeypot   *attack.Store
	Plan       *ipmeta.Plan
	History    *openintel.History
	WindowDays int
	// MailIdx, when set, enables the §8 mail-infrastructure analysis.
	MailIdx MailIndex

	// lazily computed caches
	rev        *openintel.ReverseIndex
	telPct     []float64 // sorted telescope intensities
	hpPct      []float64 // sorted honeypot intensities
	telMean    float64
	hpMean     float64
	join       *webJoin
	migrations *migrationStudy
}

// New creates a Dataset.
func New(tel, hp *attack.Store, plan *ipmeta.Plan, hist *openintel.History, windowDays int) *Dataset {
	if windowDays == 0 {
		windowDays = attack.WindowDays
	}
	return &Dataset{
		Telescope:  tel,
		Honeypot:   hp,
		Plan:       plan,
		History:    hist,
		WindowDays: windowDays,
	}
}

// Events returns the events of one source.
func (ds *Dataset) events(src attack.Source) []attack.Event {
	if src == attack.SourceTelescope {
		return ds.Telescope.Events()
	}
	return ds.Honeypot.Events()
}

// intensityStats caches the per-dataset sorted intensity arrays and means
// used for percentile normalization and the medium+ threshold.
func (ds *Dataset) intensityStats() {
	if ds.telPct != nil {
		return
	}
	for _, e := range ds.Telescope.Events() {
		ds.telPct = append(ds.telPct, e.MaxPPS)
		ds.telMean += e.MaxPPS
	}
	if n := len(ds.telPct); n > 0 {
		ds.telMean /= float64(n)
	}
	for _, e := range ds.Honeypot.Events() {
		ds.hpPct = append(ds.hpPct, e.AvgRPS)
		ds.hpMean += e.AvgRPS
	}
	if n := len(ds.hpPct); n > 0 {
		ds.hpMean /= float64(n)
	}
	sort.Float64s(ds.telPct)
	sort.Float64s(ds.hpPct)
}

// IntensityPercentile maps an event's intensity to its percentile within
// its own data set (the normalization of §6).
func (ds *Dataset) IntensityPercentile(e *attack.Event) float64 {
	ds.intensityStats()
	arr := ds.telPct
	v := e.MaxPPS
	if e.Source == attack.SourceHoneypot {
		arr = ds.hpPct
		v = e.AvgRPS
	}
	if len(arr) < 2 {
		return 1
	}
	i := sort.SearchFloat64s(arr, v)
	return float64(i) / float64(len(arr)-1)
}

// MediumPlus reports whether the event's intensity is at least the mean of
// all intensities in its data set (§4, Figure 5's definition).
func (ds *Dataset) MediumPlus(e *attack.Event) bool {
	ds.intensityStats()
	if e.Source == attack.SourceTelescope {
		return e.MaxPPS >= ds.telMean
	}
	return e.AvgRPS >= ds.hpMean
}

// reverseIndex caches the History reverse index.
func (ds *Dataset) reverseIndex() *openintel.ReverseIndex {
	if ds.rev == nil && ds.History != nil {
		ds.rev = ds.History.BuildReverseIndex()
	}
	return ds.rev
}

// allEvents iterates both data sets.
func (ds *Dataset) allEvents(fn func(e *attack.Event)) {
	for i, evs := 0, ds.Telescope.Events(); i < len(evs); i++ {
		fn(&evs[i])
	}
	for i, evs := 0, ds.Honeypot.Events(); i < len(evs); i++ {
		fn(&evs[i])
	}
}

// uniqueTargets collects the distinct target addresses of one source (or
// of both with src < 0).
func (ds *Dataset) uniqueTargets(src int) map[netx.Addr]struct{} {
	out := make(map[netx.Addr]struct{})
	add := func(evs []attack.Event) {
		for i := range evs {
			out[evs[i].Target] = struct{}{}
		}
	}
	if src < 0 || attack.Source(src) == attack.SourceTelescope {
		add(ds.Telescope.Events())
	}
	if src < 0 || attack.Source(src) == attack.SourceHoneypot {
		add(ds.Honeypot.Events())
	}
	return out
}

// Package core implements the paper's primary contribution: the data
// fusion framework that integrates the telescope and honeypot attack
// event data sets with target metadata (geolocation, prefix-to-AS), the
// active DNS measurement history, and the DPS-use data set, and derives
// every analysis of §4 (attack events), §5 (effect on the Web) and §6
// (DPS migration) — one method per table and figure.
//
// All analyses consume the attack stores through the attack.Query API:
// filters push down to shard/index pruning, and the per-day aggregations
// fan out across shards with attack.Fold.
package core

import (
	"sort"

	"doscope/internal/attack"
	"doscope/internal/ipmeta"
	"doscope/internal/netx"
	"doscope/internal/openintel"
)

// Dataset bundles the fused data sources. Telescope and Honeypot are
// required; Plan enables geo/ASN enrichment; History enables the §5/§6
// Web analyses.
type Dataset struct {
	Telescope  *attack.Store
	Honeypot   *attack.Store
	Plan       *ipmeta.Plan
	History    *openintel.History
	WindowDays int
	// MailIdx, when set, enables the §8 mail-infrastructure analysis.
	MailIdx MailIndex

	// lazily computed caches, memoized behind the attack stores' version
	// counters: refreshCaches drops them when either store has been
	// mutated (Store.Version counts Add and AddBatch mutations) since
	// they were built, so chained analyses (Figure5/Figure6/Figure7 in
	// one run) reuse the web join and intensity stats while live ingest
	// stays correct. Version bumps are cheap on the store side — Add no
	// longer invalidates its own indexes — so checking here per call
	// costs two loads.
	rev        *openintel.ReverseIndex
	telVer     uint64
	hpVer      uint64
	versioned  bool
	statsDone  bool
	telPct     []float64 // sorted telescope intensities
	hpPct      []float64 // sorted honeypot intensities
	telMean    float64
	hpMean     float64
	join       *webJoin
	migrations *migrationStudy
}

// storeVersion reads a store's mutation counter, tolerating nil stores.
func storeVersion(s *attack.Store) uint64 {
	if s == nil {
		return 0
	}
	return s.Version()
}

// refreshCaches invalidates every store-derived cache if either attack
// store changed since the caches were built. Analyses call it before
// consulting a memoized intermediate.
func (ds *Dataset) refreshCaches() {
	tv, hv := storeVersion(ds.Telescope), storeVersion(ds.Honeypot)
	if ds.versioned && tv == ds.telVer && hv == ds.hpVer {
		return
	}
	ds.versioned, ds.telVer, ds.hpVer = true, tv, hv
	ds.statsDone = false
	ds.telPct, ds.hpPct = nil, nil
	ds.telMean, ds.hpMean = 0, 0
	ds.join = nil
	ds.migrations = nil
}

// New creates a Dataset.
func New(tel, hp *attack.Store, plan *ipmeta.Plan, hist *openintel.History, windowDays int) *Dataset {
	if windowDays == 0 {
		windowDays = attack.WindowDays
	}
	return &Dataset{
		Telescope:  tel,
		Honeypot:   hp,
		Plan:       plan,
		History:    hist,
		WindowDays: windowDays,
	}
}

// All starts a query spanning both attack data sets.
func (ds *Dataset) All() *attack.Query {
	return attack.QueryStores(ds.Telescope, ds.Honeypot)
}

// source returns the store of one sensor.
func (ds *Dataset) source(src attack.Source) *attack.Store {
	if src == attack.SourceTelescope {
		return ds.Telescope
	}
	return ds.Honeypot
}

// intensityStats caches the per-dataset sorted intensity arrays and means
// used for percentile normalization and the medium+ threshold. Must be
// called before any parallel fold whose accumulator consults
// IntensityPercentile or MediumPlus.
func (ds *Dataset) intensityStats() {
	ds.refreshCaches()
	if ds.statsDone {
		return
	}
	ds.statsDone = true
	for e := range ds.Telescope.Query().Iter() {
		ds.telPct = append(ds.telPct, e.MaxPPS)
		ds.telMean += e.MaxPPS
	}
	if n := len(ds.telPct); n > 0 {
		ds.telMean /= float64(n)
	}
	for e := range ds.Honeypot.Query().Iter() {
		ds.hpPct = append(ds.hpPct, e.AvgRPS)
		ds.hpMean += e.AvgRPS
	}
	if n := len(ds.hpPct); n > 0 {
		ds.hpMean /= float64(n)
	}
	sort.Float64s(ds.telPct)
	sort.Float64s(ds.hpPct)
}

// IntensityPercentile maps an event's intensity to its percentile within
// its own data set (the normalization of §6).
func (ds *Dataset) IntensityPercentile(e *attack.Event) float64 {
	ds.intensityStats()
	arr := ds.telPct
	v := e.MaxPPS
	if e.Source == attack.SourceHoneypot {
		arr = ds.hpPct
		v = e.AvgRPS
	}
	if len(arr) < 2 {
		return 1
	}
	i := sort.SearchFloat64s(arr, v)
	return float64(i) / float64(len(arr)-1)
}

// MediumPlus reports whether the event's intensity is at least the mean of
// all intensities in its data set (§4, Figure 5's definition).
func (ds *Dataset) MediumPlus(e *attack.Event) bool {
	ds.intensityStats()
	if e.Source == attack.SourceTelescope {
		return e.MaxPPS >= ds.telMean
	}
	return e.AvgRPS >= ds.hpMean
}

// reverseIndex caches the History reverse index.
func (ds *Dataset) reverseIndex() *openintel.ReverseIndex {
	if ds.rev == nil && ds.History != nil {
		ds.rev = ds.History.BuildReverseIndex()
	}
	return ds.rev
}

// allEvents iterates both data sets sequentially (telescope first), for
// analyses whose accumulators carry cross-event state.
func (ds *Dataset) allEvents(fn func(e *attack.Event)) {
	for e := range ds.All().Iter() {
		fn(e)
	}
}

// addrSet is the Fold shape shared by the unique-target analyses.
func newAddrSet() map[netx.Addr]struct{} { return make(map[netx.Addr]struct{}) }

func mergeAddrSets(a, b map[netx.Addr]struct{}) map[netx.Addr]struct{} {
	if len(b) > len(a) {
		a, b = b, a
	}
	for k := range b {
		a[k] = struct{}{}
	}
	return a
}

// uniqueTargets collects the distinct target addresses of one source (or
// of both with src < 0), fanning out across shards.
func (ds *Dataset) uniqueTargets(src int) map[netx.Addr]struct{} {
	q := ds.All()
	if src >= 0 {
		q = ds.source(attack.Source(src)).Query()
	}
	return attack.Fold(q, newAddrSet,
		func(m map[netx.Addr]struct{}, e *attack.Event) map[netx.Addr]struct{} {
			m[e.Target] = struct{}{}
			return m
		}, mergeAddrSets)
}

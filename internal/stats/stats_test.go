package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestCDFBasics(t *testing.T) {
	c := NewCDF([]float64{1, 2, 2, 3, 10})
	if c.Len() != 5 {
		t.Fatalf("Len = %d", c.Len())
	}
	cases := []struct {
		x    float64
		want float64
	}{
		{0.5, 0}, {1, 0.2}, {2, 0.6}, {3, 0.8}, {9.99, 0.8}, {10, 1}, {11, 1},
	}
	for _, cse := range cases {
		if got := c.At(cse.x); math.Abs(got-cse.want) > 1e-12 {
			t.Errorf("At(%v) = %v, want %v", cse.x, got, cse.want)
		}
	}
	if got := c.Median(); got != 2 {
		t.Errorf("Median = %v", got)
	}
	if got := c.Mean(); math.Abs(got-3.6) > 1e-12 {
		t.Errorf("Mean = %v", got)
	}
	if c.Min() != 1 || c.Max() != 10 {
		t.Errorf("Min/Max = %v/%v", c.Min(), c.Max())
	}
}

func TestCDFEmpty(t *testing.T) {
	c := NewCDF(nil)
	if c.At(5) != 0 {
		t.Error("empty CDF At != 0")
	}
	if !math.IsNaN(c.Quantile(0.5)) {
		t.Error("empty CDF quantile not NaN")
	}
	if !math.IsNaN(c.Mean()) {
		t.Error("empty CDF mean not NaN")
	}
}

func TestCDFMonotone(t *testing.T) {
	f := func(raw []float64) bool {
		vals := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				vals = append(vals, v)
			}
		}
		if len(vals) == 0 {
			return true
		}
		c := NewCDF(vals)
		xs := append([]float64(nil), vals...)
		sort.Float64s(xs)
		prev := 0.0
		for _, x := range xs {
			y := c.At(x)
			if y < prev || y < 0 || y > 1 {
				return false
			}
			prev = y
		}
		return c.At(xs[len(xs)-1]) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantileNearestRank(t *testing.T) {
	c := NewCDF([]float64{10, 20, 30, 40})
	if got := c.Quantile(0.25); got != 10 {
		t.Errorf("Q(0.25) = %v", got)
	}
	if got := c.Quantile(0.26); got != 20 {
		t.Errorf("Q(0.26) = %v", got)
	}
	if got := c.Quantile(1); got != 40 {
		t.Errorf("Q(1) = %v", got)
	}
	if got := c.Quantile(0); got != 10 {
		t.Errorf("Q(0) = %v", got)
	}
}

func TestQuantileAtInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	vals := make([]float64, 500)
	for i := range vals {
		vals[i] = rng.ExpFloat64() * 100
	}
	c := NewCDF(vals)
	for _, q := range []float64{0.1, 0.25, 0.5, 0.9, 0.99} {
		x := c.Quantile(q)
		if got := c.At(x); got < q-1e-9 {
			t.Errorf("At(Quantile(%v)) = %v < %v", q, got, q)
		}
	}
}

func TestLogHistogram(t *testing.T) {
	h := NewLogHistogram([]int{1, 1, 2, 10, 11, 100, 101, 1000, 5000, 0, -3})
	// bins: n=1 ->2 ; (1,10] -> {2,10} =2 ; (10,100] -> {11,100} =2 ;
	// (100,1000] -> {101,1000} =2 ; (1000,10000] -> {5000} =1
	want := []int{2, 2, 2, 2, 1}
	if len(h.Counts) != len(want) {
		t.Fatalf("Counts = %v", h.Counts)
	}
	for i, w := range want {
		if h.Counts[i] != w {
			t.Errorf("bin %d (%s) = %d, want %d", i, h.BinLabel(i), h.Counts[i], w)
		}
	}
	if h.BinLabel(0) != "n=1" || h.BinLabel(1) != "1<n<=10" {
		t.Errorf("labels: %q %q", h.BinLabel(0), h.BinLabel(1))
	}
}

func TestLogHistogramBoundaries(t *testing.T) {
	// Powers of ten land in the bin they close.
	h := &LogHistogram{}
	h.Add(10)
	h.Add(100)
	h.Add(1000)
	if h.Counts[1] != 1 || h.Counts[2] != 1 || h.Counts[3] != 1 {
		t.Errorf("Counts = %v", h.Counts)
	}
}

func TestDaily(t *testing.T) {
	d := NewDaily(10)
	d.Add(0, 5)
	d.Add(0, 3)
	d.Add(9, 2)
	d.Add(10, 100) // out of window: dropped
	d.Add(-1, 100)
	if d.Values[0] != 8 || d.Values[9] != 2 {
		t.Errorf("Values = %v", d.Values)
	}
	if got := d.Mean(); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("Mean = %v", got)
	}
	max, at := d.Max()
	if max != 8 || at != 0 {
		t.Errorf("Max = %v @ %d", max, at)
	}
}

func TestCubicSplineInterpolatesKnots(t *testing.T) {
	xs := []float64{0, 10, 20, 30}
	ys := []float64{1, 5, 2, 8}
	s := NewCubicSpline(xs, ys)
	for i := range xs {
		if got := s.Eval(xs[i]); math.Abs(got-ys[i]) > 1e-9 {
			t.Errorf("Eval(%v) = %v, want %v", xs[i], got, ys[i])
		}
	}
}

func TestCubicSplineSmoothBetweenKnots(t *testing.T) {
	// A spline through samples of a line must reproduce the line.
	xs := []float64{0, 1, 2, 3, 4}
	ys := []float64{0, 2, 4, 6, 8}
	s := NewCubicSpline(xs, ys)
	for x := -1.0; x <= 5; x += 0.25 {
		if got := s.Eval(x); math.Abs(got-2*x) > 1e-9 {
			t.Errorf("Eval(%v) = %v, want %v", x, got, 2*x)
		}
	}
}

func TestCubicSplineDegenerate(t *testing.T) {
	if got := NewCubicSpline(nil, nil).Eval(5); got != 0 {
		t.Errorf("empty spline = %v", got)
	}
	if got := NewCubicSpline([]float64{1}, []float64{7}).Eval(99); got != 7 {
		t.Errorf("single-knot spline = %v", got)
	}
	two := NewCubicSpline([]float64{0, 10}, []float64{0, 10})
	if got := two.Eval(5); math.Abs(got-5) > 1e-9 {
		t.Errorf("two-knot spline = %v", got)
	}
}

func TestMonthlyMedianSpline(t *testing.T) {
	d := NewDaily(90)
	for i := range d.Values {
		d.Values[i] = 100
	}
	sm := d.MonthlyMedianSpline()
	if len(sm) != 90 {
		t.Fatalf("len = %d", len(sm))
	}
	for i, v := range sm {
		if math.Abs(v-100) > 1e-6 {
			t.Fatalf("smoothed[%d] = %v, want 100", i, v)
		}
	}
}

func TestNormalize(t *testing.T) {
	out := Normalize([]float64{0, 9, 99})
	if out[0] != 0 {
		t.Errorf("norm(0) = %v", out[0])
	}
	if math.Abs(out[2]-1) > 1e-12 {
		t.Errorf("norm(max) = %v", out[2])
	}
	if out[1] <= out[0] || out[1] >= out[2] {
		t.Errorf("not monotone: %v", out)
	}
	// log scaling: 9 of 99 maps to log(10)/log(100) = 0.5
	if math.Abs(out[1]-0.5) > 1e-12 {
		t.Errorf("norm(9) = %v, want 0.5", out[1])
	}
	allZero := Normalize([]float64{0, 0})
	if allZero[0] != 0 || allZero[1] != 0 {
		t.Errorf("all-zero normalize = %v", allZero)
	}
}

func TestNormalizeRange(t *testing.T) {
	f := func(raw []float64) bool {
		vals := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				vals = append(vals, math.Abs(v))
			}
		}
		out := Normalize(vals)
		for _, v := range out {
			if v < 0 || v > 1 || math.IsNaN(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPercentile(t *testing.T) {
	vals := []float64{5, 1, 3, 2, 4}
	if got := Percentile(vals, 50); got != 3 {
		t.Errorf("P50 = %v", got)
	}
	if got := Percentile(vals, 100); got != 5 {
		t.Errorf("P100 = %v", got)
	}
	// input must not be mutated
	if vals[0] != 5 {
		t.Error("Percentile mutated input")
	}
}

func TestCDFPoints(t *testing.T) {
	vals := make([]float64, 100)
	for i := range vals {
		vals[i] = float64(i + 1)
	}
	pts := NewCDF(vals).Points(10)
	if len(pts) != 10 {
		t.Fatalf("len = %d", len(pts))
	}
	prevY := -1.0
	for _, p := range pts {
		if p.Y < prevY {
			t.Fatalf("points not monotone: %v", pts)
		}
		prevY = p.Y
	}
	if pts[len(pts)-1].Y != 1 {
		t.Errorf("last point Y = %v", pts[len(pts)-1].Y)
	}
}

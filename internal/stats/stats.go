// Package stats provides the small statistical toolkit the analyses need:
// empirical CDFs and quantiles, log-binned histograms, daily time series
// over the measurement window, and the monthly-median cubic-spline
// smoothing the paper applies in Figure 7.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// CDF is an empirical cumulative distribution over float64 samples.
type CDF struct {
	sorted []float64
}

// NewCDF copies and sorts the samples.
func NewCDF(samples []float64) *CDF {
	s := make([]float64, len(samples))
	copy(s, samples)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// Len returns the sample count.
func (c *CDF) Len() int { return len(c.sorted) }

// At returns P(X <= x), in [0,1]. An empty CDF returns 0.
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(c.sorted, x)
	// SearchFloat64s returns the first index with sorted[i] >= x; advance
	// over equal values to make the CDF right-continuous (<= semantics).
	for i < len(c.sorted) && c.sorted[i] == x {
		i++
	}
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the q-quantile (0 <= q <= 1) using the nearest-rank
// method. An empty CDF returns NaN.
func (c *CDF) Quantile(q float64) float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return c.sorted[0]
	}
	if q >= 1 {
		return c.sorted[len(c.sorted)-1]
	}
	rank := int(math.Ceil(q*float64(len(c.sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return c.sorted[rank]
}

// Mean returns the arithmetic mean of the samples.
func (c *CDF) Mean() float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, v := range c.sorted {
		sum += v
	}
	return sum / float64(len(c.sorted))
}

// Median returns the 0.5-quantile.
func (c *CDF) Median() float64 { return c.Quantile(0.5) }

// Min and Max return the extreme samples.
func (c *CDF) Min() float64 { return c.Quantile(0) }

// Max returns the largest sample.
func (c *CDF) Max() float64 { return c.Quantile(1) }

// Points samples the CDF at n log-spaced x positions between the smallest
// positive sample and the maximum; used to print figure series.
func (c *CDF) Points(n int) []Point {
	if len(c.sorted) == 0 || n <= 0 {
		return nil
	}
	lo := math.NaN()
	for _, v := range c.sorted {
		if v > 0 {
			lo = v
			break
		}
	}
	hi := c.Max()
	if math.IsNaN(lo) || hi <= lo {
		return []Point{{X: hi, Y: 1}}
	}
	out := make([]Point, 0, n)
	logLo, logHi := math.Log(lo), math.Log(hi)
	for i := 0; i < n; i++ {
		x := math.Exp(logLo + (logHi-logLo)*float64(i)/float64(n-1))
		out = append(out, Point{X: x, Y: c.At(x)})
	}
	return out
}

// Point is an (x, y) sample of a curve.
type Point struct{ X, Y float64 }

// LogHistogram counts values into decade bins: (0,1], (1,10], (10,100]...
// plus an exact bin for n == lowest. The paper's Figure 6 uses bins n=1,
// 1<n<=10, 10<n<=100, ...
type LogHistogram struct {
	// Counts[0] is the exact-1 bin; Counts[k] for k>=1 covers
	// (10^(k-1), 10^k].
	Counts []int
}

// NewLogHistogram builds the histogram from positive integer-valued data.
func NewLogHistogram(values []int) *LogHistogram {
	h := &LogHistogram{}
	for _, v := range values {
		h.Add(v)
	}
	return h
}

// Add counts one value. Non-positive values are ignored.
func (h *LogHistogram) Add(v int) {
	if v <= 0 {
		return
	}
	bin := 0
	if v > 1 {
		bin = 1 + int(math.Floor(math.Log10(float64(v)-0.5)))
		if bin < 1 {
			bin = 1
		}
	}
	for len(h.Counts) <= bin {
		h.Counts = append(h.Counts, 0)
	}
	h.Counts[bin]++
}

// BinLabel names bin k in the paper's style.
func (h *LogHistogram) BinLabel(k int) string {
	if k == 0 {
		return "n=1"
	}
	if k == 1 {
		return "1<n<=10"
	}
	return fmt.Sprintf("1e%d<n<=1e%d", k-1, k)
}

// Daily is a time series with one float64 value per day of the
// measurement window.
type Daily struct {
	Values []float64
}

// NewDaily allocates a zeroed series of n days.
func NewDaily(n int) *Daily { return &Daily{Values: make([]float64, n)} }

// Add accumulates v on the given day index; out-of-window days are
// dropped.
func (d *Daily) Add(day int, v float64) {
	if day < 0 || day >= len(d.Values) {
		return
	}
	d.Values[day] += v
}

// Mean returns the average daily value.
func (d *Daily) Mean() float64 {
	if len(d.Values) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, v := range d.Values {
		sum += v
	}
	return sum / float64(len(d.Values))
}

// Max returns the maximum daily value and its day index.
func (d *Daily) Max() (float64, int) {
	best, at := math.Inf(-1), -1
	for i, v := range d.Values {
		if v > best {
			best, at = v, i
		}
	}
	return best, at
}

// MonthlyMedianSpline reproduces the paper's Figure 7 smoothing: take the
// median value of each ~30-day month, then interpolate a natural cubic
// spline through the (month-midpoint, median) knots, evaluated per day.
func (d *Daily) MonthlyMedianSpline() []float64 {
	const monthLen = 30
	n := len(d.Values)
	if n == 0 {
		return nil
	}
	var xs, ys []float64
	for start := 0; start < n; start += monthLen {
		end := start + monthLen
		if end > n {
			end = n
		}
		month := make([]float64, end-start)
		copy(month, d.Values[start:end])
		sort.Float64s(month)
		med := month[len(month)/2]
		xs = append(xs, float64(start+(end-start)/2))
		ys = append(ys, med)
	}
	spline := NewCubicSpline(xs, ys)
	out := make([]float64, n)
	for i := range out {
		out[i] = spline.Eval(float64(i))
	}
	return out
}

// CubicSpline is a natural cubic spline through strictly increasing knots.
type CubicSpline struct {
	xs, ys, m []float64 // m: second derivatives at knots
}

// NewCubicSpline fits a natural cubic spline. With fewer than two knots
// evaluation returns the single knot's y (or 0 with none). xs must be
// strictly increasing.
func NewCubicSpline(xs, ys []float64) *CubicSpline {
	s := &CubicSpline{xs: xs, ys: ys}
	n := len(xs)
	if n < 3 {
		s.m = make([]float64, n)
		return s
	}
	// Solve the tridiagonal system for natural boundary conditions.
	a := make([]float64, n)
	b := make([]float64, n)
	c := make([]float64, n)
	r := make([]float64, n)
	b[0], b[n-1] = 1, 1
	for i := 1; i < n-1; i++ {
		hPrev := xs[i] - xs[i-1]
		hNext := xs[i+1] - xs[i]
		a[i] = hPrev
		b[i] = 2 * (hPrev + hNext)
		c[i] = hNext
		r[i] = 6 * ((ys[i+1]-ys[i])/hNext - (ys[i]-ys[i-1])/hPrev)
	}
	// Thomas algorithm.
	for i := 1; i < n; i++ {
		w := a[i] / b[i-1]
		b[i] -= w * c[i-1]
		r[i] -= w * r[i-1]
	}
	m := make([]float64, n)
	m[n-1] = r[n-1] / b[n-1]
	for i := n - 2; i >= 0; i-- {
		m[i] = (r[i] - c[i]*m[i+1]) / b[i]
	}
	s.m = m
	return s
}

// Eval evaluates the spline, extrapolating linearly outside the knots.
func (s *CubicSpline) Eval(x float64) float64 {
	n := len(s.xs)
	if n == 0 {
		return 0
	}
	if n == 1 {
		return s.ys[0]
	}
	if x <= s.xs[0] {
		// Linear extrapolation using the first segment's end slope.
		return s.ys[0] + s.slopeAt(0)*(x-s.xs[0])
	}
	if x >= s.xs[n-1] {
		return s.ys[n-1] + s.slopeAt(n-2)*(x-s.xs[n-1])
	}
	i := sort.SearchFloat64s(s.xs, x) - 1
	if i < 0 {
		i = 0
	}
	h := s.xs[i+1] - s.xs[i]
	t := (s.xs[i+1] - x) / h
	u := (x - s.xs[i]) / h
	return t*s.ys[i] + u*s.ys[i+1] +
		((t*t*t-t)*s.m[i]+(u*u*u-u)*s.m[i+1])*h*h/6
}

func (s *CubicSpline) slopeAt(seg int) float64 {
	h := s.xs[seg+1] - s.xs[seg]
	return (s.ys[seg+1]-s.ys[seg])/h - h/6*(2*s.m[seg]+s.m[seg+1])
}

// Normalize scales samples into [0,1] with a log transform:
// norm(x) = log1p(x) / log1p(max). The paper normalizes per-data-set attack
// intensities onto [0,1] (Table 9); a log transform keeps the heavy tail
// from collapsing the bulk to ~0.
func Normalize(samples []float64) []float64 {
	var max float64
	for _, v := range samples {
		if v > max {
			max = v
		}
	}
	out := make([]float64, len(samples))
	if max <= 0 {
		return out
	}
	den := math.Log1p(max)
	for i, v := range samples {
		if v < 0 {
			v = 0
		}
		out[i] = math.Log1p(v) / den
	}
	return out
}

// Percentile computes the p-th percentile (0-100) of samples without
// mutating them.
func Percentile(samples []float64, p float64) float64 {
	return NewCDF(samples).Quantile(p / 100)
}

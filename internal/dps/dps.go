// Package dps identifies DDoS Protection Service use from DNS state,
// following the methodology of Jonker et al. (IMC 2016) that the paper's
// fourth data set is built with: a Web site is attributed to a provider
// when its NS records fall in the provider's name-server space, when its
// www label expands through a provider-owned CNAME, or when its A record
// resolves into the provider's network (BGP diversion).
package dps

import (
	"strings"

	"doscope/internal/ipmeta"
)

// Provider is one of the ten DPS providers the paper tracks.
type Provider uint8

// Providers; None means no DPS detected.
const (
	None Provider = iota
	Akamai
	CenturyLink
	CloudFlare
	DOSarrest
	F5
	Incapsula
	Level3
	Neustar
	Verisign
	VirtualRoad
	NumProviders = int(VirtualRoad)
)

// String returns the provider name as the paper prints it.
func (p Provider) String() string {
	switch p {
	case None:
		return "none"
	case Akamai:
		return "Akamai"
	case CenturyLink:
		return "CenturyLink"
	case CloudFlare:
		return "CloudFlare"
	case DOSarrest:
		return "DOSarrest"
	case F5:
		return "F5"
	case Incapsula:
		return "Incapsula"
	case Level3:
		return "Level 3"
	case Neustar:
		return "Neustar"
	case Verisign:
		return "Verisign"
	case VirtualRoad:
		return "VirtualRoad"
	}
	return "provider-?"
}

// All lists the ten providers in table order.
func All() []Provider {
	return []Provider{Akamai, CenturyLink, CloudFlare, DOSarrest, F5, Incapsula, Level3, Neustar, Verisign, VirtualRoad}
}

// Fingerprint describes how a provider shows up in the DNS.
type Fingerprint struct {
	Provider Provider
	// NSSuffix matches the tail of NS record targets.
	NSSuffix string
	// CNAMESuffix matches the tail of CNAME expansion targets.
	CNAMESuffix string
	// ASName is the provider's network in the ipmeta plan, for A-record
	// (BGP diversion) detection.
	ASName string
}

// Fingerprints returns the detection table. The name-server and CNAME
// suffixes are synthetic stand-ins with the same structure as the real
// ones (e.g. *.ns.cloudflare.com, *.incapdns.net).
func Fingerprints() []Fingerprint {
	return []Fingerprint{
		{Akamai, ".akam.net", ".edgekey.net", "Akamai"},
		{CenturyLink, ".centurylink-dns.com", ".cdn.centurylink.net", "CenturyLink"},
		{CloudFlare, ".ns.cloudflare.com", ".cdn.cloudflare.net", "CloudFlare"},
		{DOSarrest, ".dosarrest.com", ".dosarrest-cdn.com", "DOSarrest"},
		{F5, ".f5silverline.com", ".f5cloudservices.net", "F5 Networks"},
		{Incapsula, ".incapdns.net", ".incapdns.net", "Incapsula"},
		{Level3, ".level3dns.net", ".footprint.net", "Level 3"},
		{Neustar, ".ultradns.net", ".ultracdn.net", "Neustar"},
		{Verisign, ".verisigndns.com", ".verisign-scrubbing.com", "Verisign"},
		{VirtualRoad, ".virtualroad.org", ".deflect.virtualroad.org", "VirtualRoad"},
	}
}

// Detector resolves A records to providers via the address plan.
type Detector struct {
	fps      []Fingerprint
	asnByFP  []ipmeta.ASN
	haveASNs bool
}

// NewDetector builds a detector; plan may be nil, disabling A-record
// (BGP-diversion) detection.
func NewDetector(plan *ipmeta.Plan) *Detector {
	d := &Detector{fps: Fingerprints()}
	if plan != nil {
		d.asnByFP = make([]ipmeta.ASN, len(d.fps))
		for i, fp := range d.fps {
			if asn, ok := plan.ASNByName(fp.ASName); ok {
				d.asnByFP[i] = asn
			}
		}
		d.haveASNs = true
	}
	return d
}

// DNSState is the per-domain DNS view the detector inspects: the domain's
// NS record targets, the CNAME chain of its www label (if any), and the
// origin AS of the A record the www label finally resolves to.
type DNSState struct {
	NS    []string
	CNAME string
	AASN  ipmeta.ASN
}

// Detect returns the provider a domain outsources to, or None. NS evidence
// wins over CNAME evidence, which wins over BGP (A record) evidence,
// mirroring the confidence ordering of the IMC'16 methodology.
func (d *Detector) Detect(s DNSState) Provider {
	for i := range d.fps {
		for _, ns := range s.NS {
			if hasSuffixFold(ns, d.fps[i].NSSuffix) {
				return d.fps[i].Provider
			}
		}
		_ = i
	}
	if s.CNAME != "" {
		for i := range d.fps {
			if hasSuffixFold(s.CNAME, d.fps[i].CNAMESuffix) {
				return d.fps[i].Provider
			}
		}
	}
	if d.haveASNs && s.AASN != 0 {
		for i := range d.fps {
			if d.asnByFP[i] != 0 && d.asnByFP[i] == s.AASN {
				return d.fps[i].Provider
			}
		}
	}
	return None
}

func hasSuffixFold(s, suffix string) bool {
	return len(s) >= len(suffix) && strings.EqualFold(s[len(s)-len(suffix):], suffix)
}

// NameServer returns a plausible NS target for a provider (used by the
// synthetic Web model when a domain adopts the provider).
func NameServer(p Provider) string {
	for _, fp := range Fingerprints() {
		if fp.Provider == p {
			return "ns1" + fp.NSSuffix
		}
	}
	return ""
}

// CNAMETarget returns a plausible www CNAME expansion for a provider.
func CNAMETarget(p Provider, token string) string {
	for _, fp := range Fingerprints() {
		if fp.Provider == p {
			return token + fp.CNAMESuffix
		}
	}
	return ""
}

// ASName returns the provider's network name in the address plan.
func ASName(p Provider) string {
	for _, fp := range Fingerprints() {
		if fp.Provider == p {
			return fp.ASName
		}
	}
	return ""
}

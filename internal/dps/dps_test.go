package dps

import (
	"testing"

	"doscope/internal/ipmeta"
)

func testPlan(t *testing.T) *ipmeta.Plan {
	t.Helper()
	plan, err := ipmeta.BuildPlan(ipmeta.PlanConfig{Seed: 1, NumSixteens: 512, NumActive24: 1000})
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func TestDetectByNS(t *testing.T) {
	d := NewDetector(nil)
	got := d.Detect(DNSState{NS: []string{"ns1.ns.cloudflare.com"}})
	if got != CloudFlare {
		t.Errorf("NS detection = %v", got)
	}
	got = d.Detect(DNSState{NS: []string{"ns1.hoster.net", "NS2.ULTRADNS.NET"}})
	if got != Neustar {
		t.Errorf("case-insensitive NS detection = %v", got)
	}
}

func TestDetectByCNAME(t *testing.T) {
	d := NewDetector(nil)
	got := d.Detect(DNSState{NS: []string{"ns1.hoster.net"}, CNAME: "u123.incapdns.net"})
	if got != Incapsula {
		t.Errorf("CNAME detection = %v", got)
	}
}

func TestDetectByASN(t *testing.T) {
	plan := testPlan(t)
	d := NewDetector(plan)
	asn, ok := plan.ASNByName("DOSarrest")
	if !ok {
		t.Fatal("no DOSarrest AS in plan")
	}
	got := d.Detect(DNSState{NS: []string{"ns1.hoster.net"}, AASN: asn})
	if got != DOSarrest {
		t.Errorf("ASN detection = %v", got)
	}
}

func TestDetectNone(t *testing.T) {
	plan := testPlan(t)
	d := NewDetector(plan)
	got := d.Detect(DNSState{NS: []string{"ns1.godaddy-dns.net"}, CNAME: "u1.wix-sites.com", AASN: 64512})
	if got != None {
		t.Errorf("unprotected site detected as %v", got)
	}
}

func TestNSBeatsCNAME(t *testing.T) {
	d := NewDetector(nil)
	got := d.Detect(DNSState{NS: []string{"a.akam.net"}, CNAME: "u1.incapdns.net"})
	if got != Akamai {
		t.Errorf("precedence: %v, want Akamai (NS evidence wins)", got)
	}
}

func TestAllProvidersHaveFingerprints(t *testing.T) {
	if len(All()) != NumProviders {
		t.Fatalf("All() = %d providers", len(All()))
	}
	d := NewDetector(testPlan(t))
	for _, p := range All() {
		if p.String() == "provider-?" {
			t.Errorf("provider %d has no name", p)
		}
		if NameServer(p) == "" || CNAMETarget(p, "x") == "" || ASName(p) == "" {
			t.Errorf("provider %v fingerprint incomplete", p)
		}
		// Round trip: the synthetic NS/CNAME must detect as the provider.
		if got := d.Detect(DNSState{NS: []string{NameServer(p)}}); got != p {
			t.Errorf("NS round trip for %v = %v", p, got)
		}
		if got := d.Detect(DNSState{CNAME: CNAMETarget(p, "u7")}); got != p {
			t.Errorf("CNAME round trip for %v = %v", p, got)
		}
	}
}

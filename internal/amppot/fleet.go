package amppot

import (
	"sync"

	"doscope/internal/attack"
	"doscope/internal/netx"
)

// FleetSize is the number of honeypot instances; Krämer et al. show 24
// well-placed instances catch most Internet-wide reflection attacks.
const FleetSize = 24

// fleetCountries places the instances following the paper's footnote 3:
// 11 in America, 8 in Europe, 4 in Asia and 1 in Australia.
var fleetCountries = []string{
	"US", "US", "US", "US", "US", "US", "US", "CA", "CA", "BR", "MX",
	"DE", "DE", "FR", "GB", "NL", "SE", "IT", "PL",
	"JP", "SG", "KR", "IN",
	"AU",
}

// Fleet is the full honeypot deployment funneling observations into one
// collector, mirroring the merged honeypots data set.
type Fleet struct {
	Instances []*Honeypot

	mu        sync.Mutex
	collector *Collector
	streamed  int // events sent through a StreamTo sink
}

// NewFleet builds the 24-instance deployment.
func NewFleet(cfg Config) *Fleet {
	cfg.applyDefaults()
	f := &Fleet{collector: NewCollector(cfg)}
	sink := func(o Observation) {
		f.mu.Lock()
		f.collector.Add(o)
		f.mu.Unlock()
	}
	for i := 0; i < FleetSize; i++ {
		f.Instances = append(f.Instances, NewHoneypot(i, fleetCountries[i], cfg, sink))
	}
	return f
}

// Honeypot returns instance i.
func (f *Fleet) Honeypot(i int) *Honeypot { return f.Instances[i] }

// HandleRequest routes a simulated request to instance (chosen by the
// caller, e.g. round-robin over the reflector set) and returns whether a
// reply would be sent.
func (f *Fleet) HandleRequest(instance int, ts int64, victim netx.Addr, vec attack.Vector, payload []byte) (resp []byte, reply bool) {
	return f.Instances[instance%len(f.Instances)].HandleRequest(ts, victim, vec, payload)
}

// Flush closes open flows and returns all extracted attack events.
func (f *Fleet) Flush() []attack.Event {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.collector.Flush()
	return f.collector.Events()
}

// CloseIdle expires idle flows as of now.
func (f *Fleet) CloseIdle(now int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.collector.CloseIdle(now)
}

// Events returns events extracted so far without flushing open flows.
func (f *Fleet) Events() []attack.Event {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.collector.Events()
}

// StreamTo routes every event the collector extracts straight into
// st's concurrent ingest front as the flow closes, instead of
// buffering it for the next DrainTo. With the store in queued ingest
// mode (attack.Store.StartIngest) the hand-off is an enqueue — the
// store's drainer coalesces everything extracted during a tick into
// one publication — so flow closing never pays view-publication cost
// and there is no drain-time batch to carry. DrainTo/FlushTo keep
// working: they close flows (streaming the results) and report how
// many events were extracted.
func (f *Fleet) StreamTo(st *attack.Store) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.collector.SetSink(func(ev attack.Event) {
		st.Add(ev)
		f.streamed++
	})
}

// DrainTo closes flows idle as of now and hands every event extracted
// since the last drain to st — as one AddBatch (buffered mode), or by
// having already streamed them as the flows closed (after StreamTo).
// Either way a batch lands in the store's ingest front and publishes
// atomically with the store's drain cadence. It returns the number of
// events extracted.
//
// DrainTo serializes against the fleet's collector internally, and the
// store needs no external lock either: its ingest front is safe for
// concurrent producers and its query paths are lock-free reads of the
// published view, so other goroutines may query st (or drain into it)
// concurrently.
func (f *Fleet) DrainTo(st *attack.Store, now int64) int {
	f.mu.Lock()
	before := f.streamed
	f.collector.CloseIdle(now)
	evs := f.collector.Drain()
	n := len(evs) + f.streamed - before
	f.mu.Unlock()
	st.AddBatch(evs)
	return n
}

// FlushTo closes ALL open flows (ending the capture) and hands the
// remaining extracted events to st, returning how many were extracted.
// The terminal counterpart of DrainTo. If st ingests in queued mode,
// follow with st.Flush or st.Close before reading the final corpus.
func (f *Fleet) FlushTo(st *attack.Store) int {
	f.mu.Lock()
	before := f.streamed
	f.collector.Flush()
	evs := f.collector.Drain()
	n := len(evs) + f.streamed - before
	f.mu.Unlock()
	st.AddBatch(evs)
	return n
}

// FlushStore closes open flows and returns all extracted events as an
// indexed attack.Store, the form the fusion pipeline and CLIs query.
func (f *Fleet) FlushStore() *attack.Store {
	st := &attack.Store{}
	f.FlushTo(st)
	return st
}

package amppot

import (
	"errors"
	"net"
	"net/netip"
	"time"

	"doscope/internal/attack"
	"doscope/internal/netx"
)

// Serve answers requests for one protocol on a real socket until the
// connection is closed. The victim address is the datagram's source
// address — on the open Internet that address is spoofed by the attacker,
// which is exactly what AmpPot logs.
func (h *Honeypot) Serve(conn net.PacketConn, vec attack.Vector) error {
	buf := make([]byte, 65536)
	for {
		n, addr, err := conn.ReadFrom(buf)
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		victim, ok := addrToIPv4(addr)
		if !ok {
			continue
		}
		resp, reply := h.HandleRequest(time.Now().Unix(), victim, vec, buf[:n])
		if reply && len(resp) > 0 {
			// Best effort; a failed reply must not stop the honeypot.
			_, _ = conn.WriteTo(resp, addr)
		}
	}
}

func addrToIPv4(addr net.Addr) (netx.Addr, bool) {
	udp, ok := addr.(*net.UDPAddr)
	if !ok {
		return 0, false
	}
	nip, ok := netip.AddrFromSlice(udp.IP)
	if !ok {
		return 0, false
	}
	return netx.AddrFromNetip(nip.Unmap())
}

package amppot

import (
	"fmt"
	"sync"

	"doscope/internal/attack"
	"doscope/internal/netx"
)

// Config parameterizes a honeypot instance and the fleet's event
// extraction. Defaults are the paper's.
type Config struct {
	// ReplyLimitPerMinute caps replies per source per minute so real
	// attacks are not amplified; AmpPot replies only to sources sending
	// fewer than three packets per minute. Default 3.
	ReplyLimitPerMinute int
	// MinRequests is the event threshold distinguishing attacks from
	// scans; the paper considers only events exceeding 100 requests.
	// Default 100.
	MinRequests uint64
	// GapTimeout (seconds) splits request streams into separate events.
	// Default 3600.
	GapTimeout int64
	// MaxEventDuration (seconds) caps one event; AmpPot caps attack
	// durations at 24 hours. Default 86400.
	MaxEventDuration int64
}

func (c *Config) applyDefaults() {
	if c.ReplyLimitPerMinute == 0 {
		c.ReplyLimitPerMinute = 3
	}
	if c.MinRequests == 0 {
		c.MinRequests = 100
	}
	if c.GapTimeout == 0 {
		c.GapTimeout = 3600
	}
	if c.MaxEventDuration == 0 {
		c.MaxEventDuration = 86400
	}
}

// DefaultConfig returns the paper's parameters.
func DefaultConfig() Config {
	var c Config
	c.applyDefaults()
	return c
}

// Accept reports whether a request stream of the given size qualifies as
// an attack event; shared by the packet-level and event-level paths.
func (c Config) Accept(requests uint64) bool {
	c.applyDefaults()
	return requests > c.MinRequests
}

// Observation is one logged request: who the (alleged) victim is and via
// which protocol, as witnessed by one honeypot instance.
type Observation struct {
	Time     int64
	Victim   netx.Addr // source address of the spoofed request
	Vector   attack.Vector
	Honeypot int // instance id
	Bytes    int
}

// Honeypot is one AmpPot instance: protocol emulators behind a per-source
// reply rate limiter, logging every request.
type Honeypot struct {
	ID      int
	Country string // where the instance is deployed (3.1.2: geographic spread)

	cfg       Config
	emulators map[attack.Vector]Emulator

	mu      sync.Mutex
	limiter map[netx.Addr]*minuteCounter
	sink    func(Observation)
}

type minuteCounter struct {
	minute int64
	count  int
}

// NewHoneypot builds an instance; sink receives every logged request and
// must be safe for concurrent use if Serve is used.
func NewHoneypot(id int, country string, cfg Config, sink func(Observation)) *Honeypot {
	cfg.applyDefaults()
	h := &Honeypot{
		ID:        id,
		Country:   country,
		cfg:       cfg,
		emulators: make(map[attack.Vector]Emulator, len(Protocols)),
		limiter:   make(map[netx.Addr]*minuteCounter),
		sink:      sink,
	}
	for _, spec := range Protocols {
		em, ok := NewEmulator(spec.Vector)
		if !ok {
			panic(fmt.Sprintf("amppot: no emulator for %v", spec.Vector))
		}
		h.emulators[spec.Vector] = em
	}
	return h
}

// HandleRequest processes one datagram allegedly from victim for the given
// protocol at unix time ts. It returns the response payload and whether a
// reply should actually be sent (the rate limiter may suppress it). Every
// valid request is logged regardless of whether a reply is sent.
func (h *Honeypot) HandleRequest(ts int64, victim netx.Addr, vec attack.Vector, payload []byte) (resp []byte, reply bool) {
	em, ok := h.emulators[vec]
	if !ok {
		return nil, false
	}
	resp, ok = em.Respond(payload)
	if !ok {
		return nil, false
	}
	if h.sink != nil {
		h.sink(Observation{Time: ts, Victim: victim, Vector: vec, Honeypot: h.ID, Bytes: len(payload)})
	}
	return resp, h.allowReply(ts, victim)
}

// allowReply implements the <3 packets/minute reply policy.
func (h *Honeypot) allowReply(ts int64, src netx.Addr) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	min := ts / 60
	mc := h.limiter[src]
	if mc == nil {
		mc = &minuteCounter{minute: min}
		h.limiter[src] = mc
		// Opportunistic cleanup so long simulations do not accumulate
		// one entry per spoofed source forever.
		if len(h.limiter) > 1<<16 {
			for k, v := range h.limiter {
				if v.minute < min-1 {
					delete(h.limiter, k)
				}
			}
		}
	}
	if mc.minute != min {
		mc.minute = min
		mc.count = 0
	}
	mc.count++
	return mc.count < h.cfg.ReplyLimitPerMinute
}

package amppot

import (
	"bytes"
	"reflect"
	"sync"
	"testing"
	"time"

	"doscope/internal/attack"
	"doscope/internal/netx"
)

// vecFor picks a payload-agnostic protocol (CharGen and QOTD answer any
// datagram) so every request in the fixture is logged.
func vecFor(v int) attack.Vector {
	if v%2 == 0 {
		return attack.VectorCharGen
	}
	return attack.VectorQOTD
}

// driveVictim replays one victim's request stream against the fleet:
// two bursts separated by more than the gap timeout, so the collector
// closes (and, in stream mode, publishes) the first event mid-run and
// the second only at the final flush. Per-(victim,vector) observations
// stay in one goroutine, so the collector's ordering contract holds no
// matter how producers interleave.
func driveVictim(f *Fleet, victim netx.Addr, vec attack.Vector, base int64, gap int64) {
	for i := 0; i < 150; i++ {
		f.HandleRequest(int(victim)+i, base+int64(i), victim, vec, []byte{1})
	}
	for i := 0; i < 120; i++ {
		f.HandleRequest(int(victim)+i, base+150+gap+1+int64(i), victim, vec, []byte{1})
	}
}

// TestShutdownOrderingStreamedFleet is the regression test for the
// amppot daemon's shutdown sequence (stop producers → final flush →
// store close → write -out): the written segment must equal the
// ingested multiset — every extracted event exactly once — even though
// producers, periodic drains, and tick publication all raced while the
// capture was live.
func TestShutdownOrderingStreamedFleet(t *testing.T) {
	cfg := DefaultConfig()
	const producers = 4
	const victimsPer = 6

	// Live pipeline: streamed fleet into a queued-ingest store, with a
	// periodic drain ticking concurrently — the daemon's exact wiring.
	fleet := NewFleet(cfg)
	store := &attack.Store{}
	store.StartIngest(attack.IngestConfig{Tick: time.Millisecond})
	fleet.StreamTo(store)

	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for v := 0; v < victimsPer; v++ {
				victim := netx.AddrFrom4(203, 0, byte(p), byte(v))
				driveVictim(fleet, victim, vecFor(v), attack.WindowStart, cfg.GapTimeout)
			}
		}(p)
	}
	drainDone := make(chan struct{})
	stopDrain := make(chan struct{})
	go func() { // the -flush ticker
		defer close(drainDone)
		for {
			select {
			case <-stopDrain:
				return
			default:
				fleet.DrainTo(store, attack.WindowStart+150+cfg.GapTimeout+200)
				time.Sleep(200 * time.Microsecond)
			}
		}
	}()

	// Shutdown order: producers stop, periodic drain stops, final
	// flush, store close, then write.
	wg.Wait()
	close(stopDrain)
	<-drainDone
	fleet.FlushTo(store)
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := store.WriteSegment(&buf); err != nil {
		t.Fatal(err)
	}
	seg, err := attack.OpenSegment(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}

	// Oracle: the same per-victim streams through a buffered fleet,
	// sequentially.
	ref := NewFleet(cfg)
	for p := 0; p < producers; p++ {
		for v := 0; v < victimsPer; v++ {
			victim := netx.AddrFrom4(203, 0, byte(p), byte(v))
			driveVictim(ref, victim, vecFor(v), attack.WindowStart, cfg.GapTimeout)
		}
	}
	want := ref.FlushStore().Events()
	if got := seg.Events(); !reflect.DeepEqual(got, want) {
		t.Fatalf("written segment diverged from the ingested multiset: %d events, want %d", len(got), len(want))
	}
	if want2 := producers * victimsPer * 2; len(want) != want2 {
		t.Fatalf("oracle extracted %d events, fixture expected %d", len(want), want2)
	}
}

// TestStreamToCountsAndDrainReporting pins StreamTo bookkeeping: events
// extracted while streaming are reported by DrainTo/FlushTo return
// values just as in buffered mode, and Drain stays empty.
func TestStreamToCountsAndDrainReporting(t *testing.T) {
	cfg := DefaultConfig()
	fleet := NewFleet(cfg)
	store := &attack.Store{}
	fleet.StreamTo(store) // synchronous store: events visible as flows close

	victim := netx.AddrFrom4(198, 51, 100, 7)
	for i := 0; i < 150; i++ {
		fleet.HandleRequest(i, attack.WindowStart+int64(i), victim, attack.VectorCharGen, []byte{1})
	}
	// Flow still open: nothing extracted yet.
	if n := store.Len(); n != 0 {
		t.Fatalf("open flow already produced %d events", n)
	}
	if n := fleet.DrainTo(store, attack.WindowStart+150+cfg.GapTimeout+1); n != 1 {
		t.Fatalf("DrainTo reported %d extracted events, want 1", n)
	}
	if n := store.Len(); n != 1 {
		t.Fatalf("store has %d events after streamed drain, want 1", n)
	}
	for i := 0; i < 150; i++ {
		fleet.HandleRequest(i, attack.WindowStart+9000+int64(i), victim, attack.VectorCharGen, []byte{1})
	}
	if n := fleet.FlushTo(store); n != 1 {
		t.Fatalf("FlushTo reported %d extracted events, want 1", n)
	}
	if n := store.Len(); n != 2 {
		t.Fatalf("store has %d events after final flush, want 2", n)
	}
}

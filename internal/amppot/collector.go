package amppot

import (
	"sort"

	"doscope/internal/attack"
	"doscope/internal/netx"
)

// Collector merges request observations from all honeypot instances and
// extracts attack events per (victim, protocol): request streams separated
// by more than the gap timeout form distinct events, events are capped at
// 24 hours, and only events exceeding the request threshold are kept.
type Collector struct {
	cfg    Config
	flows  map[flowKey]*reqFlow
	events []attack.Event
	sink   func(attack.Event)
}

type flowKey struct {
	victim netx.Addr
	vector attack.Vector
}

type reqFlow struct {
	start, last int64
	requests    uint64
	bytes       uint64
	honeypots   uint32 // bitmap of instance ids (24 instances)
}

// NewCollector returns a Collector with the given configuration.
func NewCollector(cfg Config) *Collector {
	cfg.applyDefaults()
	return &Collector{cfg: cfg, flows: make(map[flowKey]*reqFlow)}
}

// Add ingests one observation. Observations must be fed in non-decreasing
// time order per (victim, vector) key; the fleet guarantees this when
// simulating, and live capture timestamps are naturally ordered.
func (c *Collector) Add(o Observation) {
	key := flowKey{o.Victim, o.Vector}
	f := c.flows[key]
	if f != nil {
		gap := o.Time - f.last
		if gap > c.cfg.GapTimeout || o.Time-f.start >= c.cfg.MaxEventDuration {
			c.closeFlow(key, f)
			f = nil
		}
	}
	if f == nil {
		f = &reqFlow{start: o.Time}
		c.flows[key] = f
	}
	f.last = o.Time
	f.requests++
	f.bytes += uint64(o.Bytes)
	if o.Honeypot >= 0 && o.Honeypot < 32 {
		f.honeypots |= 1 << uint(o.Honeypot)
	}
}

// SetSink routes every event extracted from a closing flow directly
// into fn instead of the internal buffer. The live pipeline points fn
// at a store's concurrent ingest front (attack.Store.Add), so events
// stream out as flows close and there is no drain-time batch to carry;
// Drain returns nil while a sink is set.
func (c *Collector) SetSink(fn func(attack.Event)) { c.sink = fn }

func (c *Collector) closeFlow(key flowKey, f *reqFlow) {
	delete(c.flows, key)
	if !c.cfg.Accept(f.requests) {
		return
	}
	duration := f.last - f.start
	if duration > c.cfg.MaxEventDuration {
		duration = c.cfg.MaxEventDuration
	}
	den := duration
	if den < 1 {
		den = 1
	}
	ev := attack.Event{
		Source:  attack.SourceHoneypot,
		Vector:  key.vector,
		Target:  key.victim,
		Start:   f.start,
		End:     f.start + duration,
		Packets: f.requests,
		Bytes:   f.bytes,
		AvgRPS:  float64(f.requests) / float64(den),
	}
	if c.sink != nil {
		c.sink(ev)
		return
	}
	c.events = append(c.events, ev)
}

// CloseIdle closes flows idle beyond the gap timeout as of time now.
func (c *Collector) CloseIdle(now int64) {
	for key, f := range c.flows {
		if now-f.last > c.cfg.GapTimeout {
			c.closeFlow(key, f)
		}
	}
}

// Flush closes all open flows.
func (c *Collector) Flush() {
	for key, f := range c.flows {
		c.closeFlow(key, f)
	}
}

// Drain returns the events extracted since the last Drain (in closing
// order, not sorted) and resets the buffer. The live pipeline pairs it
// with CloseIdle or Flush and feeds the result to attack.Store.AddBatch,
// which does not care about order.
func (c *Collector) Drain() []attack.Event {
	evs := c.events
	c.events = nil
	return evs
}

// Events returns extracted events sorted by start time.
func (c *Collector) Events() []attack.Event {
	sort.SliceStable(c.events, func(i, j int) bool {
		if c.events[i].Start != c.events[j].Start {
			return c.events[i].Start < c.events[j].Start
		}
		return c.events[i].Target < c.events[j].Target
	})
	return c.events
}

// OpenFlows returns the number of unclosed request flows.
func (c *Collector) OpenFlows() int { return len(c.flows) }

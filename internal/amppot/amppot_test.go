package amppot

import (
	"encoding/binary"
	"net"
	"sync"
	"testing"
	"time"

	"doscope/internal/attack"
	"doscope/internal/netx"
)

var victim = netx.MustParseAddr("203.0.113.10")

func ntpMonlist() []byte {
	req := make([]byte, 8)
	req[0] = 0x17 // version 2, mode 7 (private)
	req[3] = 42   // MON_GETLIST_1
	return req
}

func dnsQuery() []byte {
	q := make([]byte, 12, 29)
	binary.BigEndian.PutUint16(q[0:2], 0x1234)
	binary.BigEndian.PutUint16(q[4:6], 1) // QDCOUNT
	q = append(q, 7)
	q = append(q, []byte("example")...)
	q = append(q, 3)
	q = append(q, []byte("com")...)
	q = append(q, 0, 0, 0xff, 0, 1) // QTYPE=ANY QCLASS=IN
	return q
}

func TestEmulatorsRespondToValidRequests(t *testing.T) {
	cases := []struct {
		vec attack.Vector
		req []byte
	}{
		{attack.VectorQOTD, []byte("hi")},
		{attack.VectorCharGen, []byte{0}},
		{attack.VectorDNS, dnsQuery()},
		{attack.VectorNTP, ntpMonlist()},
		{attack.VectorSSDP, []byte("M-SEARCH * HTTP/1.1\r\nST: ssdp:all\r\n\r\n")},
		{attack.VectorMSSQL, []byte{0x02}},
		{attack.VectorRIPv1, append([]byte{1, 1, 0, 0}, make([]byte, 20)...)},
		{attack.VectorTFTP, append([]byte{0, 1}, []byte("file\x00octet\x00")...)},
	}
	for _, c := range cases {
		em, ok := NewEmulator(c.vec)
		if !ok {
			t.Fatalf("no emulator for %v", c.vec)
		}
		resp, ok := em.Respond(c.req)
		if !ok {
			t.Errorf("%v rejected valid request", c.vec)
			continue
		}
		amp := float64(len(resp)) / float64(len(c.req))
		if amp < 2 {
			t.Errorf("%v amplification = %.1f, want >= 2", c.vec, amp)
		}
	}
}

func TestEmulatorAmplificationFactors(t *testing.T) {
	// The achieved bandwidth amplification should be in the ballpark of
	// the published factor (exactly proportional for the filler-based
	// emulators, below the cap).
	em, _ := NewEmulator(attack.VectorCharGen)
	req := []byte{1, 2, 3, 4}
	resp, _ := em.Respond(req)
	if got := float64(len(resp)) / float64(len(req)); got < 300 || got > 400 {
		t.Errorf("CharGen amplification = %.1f, want ~358", got)
	}
	em, _ = NewEmulator(attack.VectorNTP)
	mon := ntpMonlist()
	resp, _ = em.Respond(mon)
	if got := float64(len(resp)) / float64(len(mon)); got < 400 || got > 600 {
		t.Errorf("NTP amplification = %.1f, want ~557", got)
	}
}

func TestEmulatorsRejectInvalidRequests(t *testing.T) {
	cases := []struct {
		vec attack.Vector
		req []byte
	}{
		{attack.VectorDNS, []byte{1, 2, 3}},                                // too short
		{attack.VectorDNS, append([]byte{0, 0, 0x80}, make([]byte, 9)...)}, // QR=1
		{attack.VectorNTP, []byte{0x03}},                                   // too short
		{attack.VectorSSDP, []byte("GET / HTTP/1.1")},                      // not M-SEARCH
		{attack.VectorMSSQL, []byte{0x99}},                                 // bad opcode
		{attack.VectorRIPv1, []byte{2, 1, 0, 0}},                           // response, not request
		{attack.VectorTFTP, []byte{0, 2, 'x'}},                             // WRQ, and no NUL
	}
	for _, c := range cases {
		em, _ := NewEmulator(c.vec)
		if _, ok := em.Respond(c.req); ok {
			t.Errorf("%v accepted invalid request % x", c.vec, c.req)
		}
	}
}

func TestNTPModeThreeGetsSmallReply(t *testing.T) {
	em, _ := NewEmulator(attack.VectorNTP)
	req := make([]byte, 48)
	req[0] = 0x1b // version 3, mode 3 (client)
	resp, ok := em.Respond(req)
	if !ok || len(resp) != 48 {
		t.Errorf("mode-3 reply = %d bytes, ok=%v; want 48", len(resp), ok)
	}
}

func TestResponseSizeCapped(t *testing.T) {
	em, _ := NewEmulator(attack.VectorNTP)
	big := make([]byte, 4096)
	big[0], big[3] = 0x17, 42
	resp, ok := em.Respond(big)
	if !ok {
		t.Fatal("rejected")
	}
	if len(resp) > maxAmplifiedBytes {
		t.Errorf("response %d bytes exceeds UDP-safe cap", len(resp))
	}
}

func TestSpecLookups(t *testing.T) {
	s, ok := SpecFor(attack.VectorNTP)
	if !ok || s.Port != 123 {
		t.Errorf("SpecFor(NTP) = %+v, %v", s, ok)
	}
	s, ok = SpecForPort(19)
	if !ok || s.Vector != attack.VectorCharGen {
		t.Errorf("SpecForPort(19) = %+v, %v", s, ok)
	}
	if _, ok := SpecFor(attack.VectorTCP); ok {
		t.Error("SpecFor(TCP) should fail")
	}
	if _, ok := SpecForPort(9999); ok {
		t.Error("SpecForPort(9999) should fail")
	}
}

func TestRateLimiterSuppressesReplies(t *testing.T) {
	h := NewHoneypot(0, "US", DefaultConfig(), nil)
	ts := attack.WindowStart
	replies := 0
	for i := 0; i < 10; i++ {
		_, reply := h.HandleRequest(ts+int64(i), victim, attack.VectorCharGen, []byte{1})
		if reply {
			replies++
		}
	}
	if replies != 2 {
		t.Errorf("replies in one minute = %d, want 2 (fewer than 3 per minute)", replies)
	}
	// A new minute resets the budget.
	_, reply := h.HandleRequest(ts+60, victim, attack.VectorCharGen, []byte{1})
	if !reply {
		t.Error("reply budget did not reset on new minute")
	}
}

func TestRateLimiterPerSource(t *testing.T) {
	h := NewHoneypot(0, "US", DefaultConfig(), nil)
	ts := attack.WindowStart
	for i := 0; i < 5; i++ {
		h.HandleRequest(ts, victim, attack.VectorCharGen, []byte{1})
	}
	other := netx.MustParseAddr("198.51.100.1")
	if _, reply := h.HandleRequest(ts, other, attack.VectorCharGen, []byte{1}); !reply {
		t.Error("limiter must be per source")
	}
}

func TestHoneypotLogsEvenWhenSuppressed(t *testing.T) {
	var logged int
	h := NewHoneypot(0, "US", DefaultConfig(), func(o Observation) { logged++ })
	ts := attack.WindowStart
	for i := 0; i < 10; i++ {
		h.HandleRequest(ts, victim, attack.VectorCharGen, []byte{1})
	}
	if logged != 10 {
		t.Errorf("logged = %d, want 10 (requests are logged even unanswered)", logged)
	}
}

func TestHoneypotIgnoresInvalidRequests(t *testing.T) {
	var logged int
	h := NewHoneypot(0, "US", DefaultConfig(), func(o Observation) { logged++ })
	if _, reply := h.HandleRequest(attack.WindowStart, victim, attack.VectorDNS, []byte{1}); reply {
		t.Error("invalid request got a reply")
	}
	if logged != 0 {
		t.Error("invalid request was logged")
	}
	if _, reply := h.HandleRequest(attack.WindowStart, victim, attack.VectorTCP, []byte{1}); reply {
		t.Error("non-reflection vector got a reply")
	}
}

func feedCollector(c *Collector, n int, start int64, spacing int64, vec attack.Vector) {
	for i := 0; i < n; i++ {
		c.Add(Observation{Time: start + int64(i)*spacing, Victim: victim, Vector: vec, Honeypot: i % FleetSize, Bytes: 8})
	}
}

func TestCollectorThreshold(t *testing.T) {
	c := NewCollector(DefaultConfig())
	feedCollector(c, 100, attack.WindowStart, 1, attack.VectorNTP) // exactly 100: not >100
	c.Flush()
	if len(c.Events()) != 0 {
		t.Errorf("100-request stream emitted %d events (threshold is >100)", len(c.Events()))
	}
	c = NewCollector(DefaultConfig())
	feedCollector(c, 101, attack.WindowStart, 1, attack.VectorNTP)
	c.Flush()
	if len(c.Events()) != 1 {
		t.Fatalf("101-request stream emitted %d events", len(c.Events()))
	}
	e := c.Events()[0]
	if e.Source != attack.SourceHoneypot || e.Vector != attack.VectorNTP || e.Target != victim {
		t.Errorf("event = %+v", e)
	}
	if e.Packets != 101 {
		t.Errorf("packets = %d", e.Packets)
	}
	if e.AvgRPS < 0.9 || e.AvgRPS > 1.2 {
		t.Errorf("AvgRPS = %v, want ~1", e.AvgRPS)
	}
}

func TestCollectorGapSplits(t *testing.T) {
	cfg := DefaultConfig()
	c := NewCollector(cfg)
	feedCollector(c, 150, attack.WindowStart, 1, attack.VectorDNS)
	feedCollector(c, 150, attack.WindowStart+150+cfg.GapTimeout+1, 1, attack.VectorDNS)
	c.Flush()
	if len(c.Events()) != 2 {
		t.Errorf("events = %d, want 2 (gap split)", len(c.Events()))
	}
}

func TestCollectorSeparatesVectors(t *testing.T) {
	c := NewCollector(DefaultConfig())
	feedCollector(c, 150, attack.WindowStart, 1, attack.VectorDNS)
	feedCollector(c, 150, attack.WindowStart, 1, attack.VectorNTP)
	c.Flush()
	if len(c.Events()) != 2 {
		t.Errorf("events = %d, want 2 (one per vector)", len(c.Events()))
	}
}

func TestCollector24hCap(t *testing.T) {
	cfg := DefaultConfig()
	c := NewCollector(cfg)
	// Requests every 10 minutes for 3 days: a continuous stream (gaps stay
	// under the 1 h timeout) that the 24 h cap must split, with each 24 h
	// segment carrying 144 > 100 requests.
	feedCollector(c, 3*144, attack.WindowStart, 600, attack.VectorSSDP)
	c.Flush()
	evs := c.Events()
	if len(evs) < 3 {
		t.Fatalf("events = %d, want >=3 (24h cap splits the stream)", len(evs))
	}
	for _, e := range evs {
		if e.Duration() > cfg.MaxEventDuration {
			t.Errorf("event duration %d exceeds 24h cap", e.Duration())
		}
	}
}

func TestCollectorCloseIdle(t *testing.T) {
	cfg := DefaultConfig()
	c := NewCollector(cfg)
	feedCollector(c, 150, attack.WindowStart, 1, attack.VectorNTP)
	if c.OpenFlows() != 1 {
		t.Fatalf("open flows = %d", c.OpenFlows())
	}
	c.CloseIdle(attack.WindowStart + 150 + cfg.GapTimeout + 1)
	if c.OpenFlows() != 0 {
		t.Errorf("idle flow not closed")
	}
	if len(c.Events()) != 1 {
		t.Errorf("events = %d", len(c.Events()))
	}
}

func TestFleetEndToEnd(t *testing.T) {
	f := NewFleet(DefaultConfig())
	if len(f.Instances) != FleetSize {
		t.Fatalf("fleet size = %d", len(f.Instances))
	}
	req := ntpMonlist()
	// An attack spraying all reflectors: 10 requests to each of the 24
	// instances = 240 > 100 threshold.
	for i := 0; i < 240; i++ {
		f.HandleRequest(i, attack.WindowStart+int64(i), victim, attack.VectorNTP, req)
	}
	evs := f.Flush()
	if len(evs) != 1 {
		t.Fatalf("fleet events = %d, want 1 merged event", len(evs))
	}
	if evs[0].Packets != 240 {
		t.Errorf("merged packets = %d", evs[0].Packets)
	}
}

func TestLiveUDPHoneypot(t *testing.T) {
	f := NewFleet(DefaultConfig())
	h := f.Honeypot(0)
	conn, err := net.ListenPacket("udp4", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = h.Serve(conn, attack.VectorCharGen)
	}()

	client, err := net.Dial("udp4", conn.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := client.Write([]byte{0x00}); err != nil {
		t.Fatal(err)
	}
	_ = client.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 65536)
	n, err := client.(*net.UDPConn).Read(buf)
	if err != nil {
		t.Fatalf("no amplified reply: %v", err)
	}
	if n < 100 {
		t.Errorf("reply only %d bytes; expected amplification", n)
	}
	conn.Close()
	<-done

	// The request must have been logged against the client's address.
	evs := f.Events()
	_ = evs // below threshold: no event, but the flow must exist
	f.mu.Lock()
	open := f.collector.OpenFlows()
	f.mu.Unlock()
	if open != 1 {
		t.Errorf("open flows after live request = %d, want 1", open)
	}
}

// TestFleetLiveDrainConcurrent drives requests from many goroutines
// while a drainer periodically moves completed events into a live
// attack.Store and a separate reader goroutine queries it concurrently
// — the cmd/amppot -flush topology with no store lock at all. Run under
// -race this exercises the fleet/collector locking against the store's
// lock-free published-view reads.
func TestFleetLiveDrainConcurrent(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MinRequests = 1
	fleet := NewFleet(cfg)

	const workers = 8
	const requests = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// One victim per worker keeps each flow's observations in
			// non-decreasing time order, as the Collector requires.
			v := netx.AddrFrom4(203, 0, 113, byte(100+w))
			req := ntpMonlist()
			for i := 0; i < requests; i++ {
				fleet.HandleRequest(w, attack.WindowStart+int64(i), v, attack.VectorNTP, req)
			}
		}(w)
	}

	store := &attack.Store{}
	done := make(chan struct{})
	var drainWG sync.WaitGroup
	drainWG.Add(2)
	go func() {
		defer drainWG.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			fleet.DrainTo(store, attack.WindowStart+requests)
			time.Sleep(time.Millisecond)
		}
	}()
	// Lock-free reader racing the drainer. Counts can only grow (the
	// pipeline never removes events) and never past one event per
	// victim, so assert monotonic non-decreasing within that bound; the
	// main point of the goroutine is the -race surface itself.
	go func() {
		defer drainWG.Done()
		last := 0
		for {
			select {
			case <-done:
				return
			default:
			}
			n := store.Query().Vectors(attack.VectorNTP).Count()
			if n < last || n > workers {
				t.Errorf("live count went from %d to %d (bound %d)", last, n, workers)
				return
			}
			last = n
			time.Sleep(time.Millisecond)
		}
	}()

	wg.Wait()
	close(done)
	drainWG.Wait()

	fleet.FlushTo(store)
	if got := store.Len(); got != workers {
		t.Fatalf("live drain extracted %d events, want %d (one flow per victim)", got, workers)
	}
	var packets uint64
	for e := range store.Query().Iter() {
		packets += e.Packets
	}
	if want := uint64(workers * requests); packets != want {
		t.Fatalf("events carry %d requests, want %d", packets, want)
	}
}

// Package amppot implements the AmpPot honeypot substrate (§3.1.2): a
// fleet of honeypots that emulate UDP protocols abused for reflection and
// amplification DoS, log the spoofed requests they receive, rate-limit
// replies so real attacks are not amplified, and aggregate per-victim
// request streams into attack events (at least 100 requests, gap-split,
// capped at 24 hours).
package amppot

import (
	"bytes"
	"encoding/binary"
	"strings"

	"doscope/internal/attack"
)

// ProtocolSpec describes one emulated reflection protocol.
type ProtocolSpec struct {
	Vector attack.Vector
	Port   uint16
	// Amplification is the paper-era bandwidth amplification factor; the
	// emulator sizes responses so this factor is actually achieved.
	Amplification float64
}

// Protocols lists the eight protocols AmpPot emulates (§3.1.2, footnote 2).
// Amplification factors follow Rossow's "Amplification Hell" (NDSS 2014).
var Protocols = []ProtocolSpec{
	{attack.VectorQOTD, 17, 140.3},
	{attack.VectorCharGen, 19, 358.8},
	{attack.VectorDNS, 53, 54.6},
	{attack.VectorNTP, 123, 556.9},
	{attack.VectorSSDP, 1900, 30.8},
	{attack.VectorMSSQL, 1434, 25.0},
	{attack.VectorRIPv1, 520, 131.2},
	{attack.VectorTFTP, 69, 60.0},
}

// SpecFor returns the protocol spec for a vector.
func SpecFor(v attack.Vector) (ProtocolSpec, bool) {
	for _, s := range Protocols {
		if s.Vector == v {
			return s, true
		}
	}
	return ProtocolSpec{}, false
}

// SpecForPort returns the protocol spec listening on a UDP port.
func SpecForPort(port uint16) (ProtocolSpec, bool) {
	for _, s := range Protocols {
		if s.Port == port {
			return s, true
		}
	}
	return ProtocolSpec{}, false
}

// Emulator parses a request for one protocol and produces an amplified
// response. Implementations must be safe for concurrent use.
type Emulator interface {
	// Respond returns the response payload for a request, or ok=false
	// when the datagram is not a valid request for this protocol.
	Respond(req []byte) (resp []byte, ok bool)
}

// NewEmulator returns the emulator for a vector.
func NewEmulator(v attack.Vector) (Emulator, bool) {
	switch v {
	case attack.VectorQOTD:
		return qotdEmulator{}, true
	case attack.VectorCharGen:
		return chargenEmulator{}, true
	case attack.VectorDNS:
		return dnsEmulator{}, true
	case attack.VectorNTP:
		return ntpEmulator{}, true
	case attack.VectorSSDP:
		return ssdpEmulator{}, true
	case attack.VectorMSSQL:
		return mssqlEmulator{}, true
	case attack.VectorRIPv1:
		return ripEmulator{}, true
	case attack.VectorTFTP:
		return tftpEmulator{}, true
	}
	return nil, false
}

// maxAmplifiedBytes caps a single response so it stays below the UDP
// payload limit when served over a real socket.
const maxAmplifiedBytes = 63000

// amplify builds a deterministic filler payload of n bytes (capped).
func amplify(n int) []byte {
	if n > maxAmplifiedBytes {
		n = maxAmplifiedBytes
	}
	out := make([]byte, n)
	const chars = "!\"#$%&'()*+,-./0123456789:;<=>?@ABCDEFGHIJKLMNOPQRSTUVWXYZ[\\]^_`abcdefg"
	for i := range out {
		out[i] = chars[i%len(chars)]
	}
	return out
}

type qotdEmulator struct{}

func (qotdEmulator) Respond(req []byte) ([]byte, bool) {
	// QOTD answers any datagram (RFC 865).
	quote := "\"The Internet interprets censorship as damage and routes around it.\" "
	n := int(140.3 * float64(maxInt(len(req), 1)))
	resp := bytes.Repeat([]byte(quote), n/len(quote)+1)
	return resp[:n], true
}

type chargenEmulator struct{}

func (chargenEmulator) Respond(req []byte) ([]byte, bool) {
	// CharGen answers any datagram with a character stream (RFC 864).
	return amplify(int(358.8 * float64(maxInt(len(req), 1)))), true
}

type dnsEmulator struct{}

func (dnsEmulator) Respond(req []byte) ([]byte, bool) {
	// Minimal DNS sanity check: 12-byte header, QR=0, QDCOUNT>=1.
	if len(req) < 12 {
		return nil, false
	}
	if req[2]&0x80 != 0 { // QR bit set: a response, not a query
		return nil, false
	}
	if binary.BigEndian.Uint16(req[4:6]) == 0 {
		return nil, false
	}
	resp := make([]byte, 0, 12+len(req))
	resp = append(resp, req[0], req[1]) // echo ID
	resp = append(resp, 0x84, 0x00)     // QR=1, AA=1
	resp = append(resp, req[4:12]...)   // counts (QDCOUNT preserved)
	resp = append(resp, req[12:]...)    // echo question section
	// Pad with "answer" filler achieving the ANY-amplification factor.
	resp = append(resp, amplify(int(54.6*float64(len(req))))...)
	return resp, true
}

type ntpEmulator struct{}

func (ntpEmulator) Respond(req []byte) ([]byte, bool) {
	// NTP private-mode monlist (mode 7, request code 42) is the abused
	// vector; plain mode-3 client requests get a normal 48-byte reply.
	if len(req) < 4 {
		return nil, false
	}
	mode := req[0] & 0x07
	if mode == 7 && len(req) >= 8 && req[3] == 42 {
		// The real monlist reply is up to 100 packets of 440 bytes; the
		// emulator concatenates them into one payload with the same
		// bandwidth amplification.
		return amplify(int(556.9 * float64(maxInt(len(req), 8)))), true
	}
	if mode == 3 && len(req) >= 48 {
		resp := make([]byte, 48)
		resp[0] = req[0]&0xf8 | 4 // mode 4 (server)
		return resp, true
	}
	return nil, false
}

type ssdpEmulator struct{}

func (ssdpEmulator) Respond(req []byte) ([]byte, bool) {
	if !strings.HasPrefix(string(req), "M-SEARCH") {
		return nil, false
	}
	head := "HTTP/1.1 200 OK\r\nCACHE-CONTROL: max-age=120\r\nST: upnp:rootdevice\r\nUSN: uuid:doscope-amppot\r\n"
	body := amplify(int(30.8 * float64(len(req))))
	return append([]byte(head+"\r\n"), body...), true
}

type mssqlEmulator struct{}

func (mssqlEmulator) Respond(req []byte) ([]byte, bool) {
	// MC-SQLR ping: a single 0x02 or 0x03 byte.
	if len(req) < 1 || (req[0] != 0x02 && req[0] != 0x03) {
		return nil, false
	}
	body := []byte("ServerName;DOSCOPE;InstanceName;MSSQLSERVER;IsClustered;No;Version;12.0.2000.8;tcp;1433;;")
	resp := make([]byte, 3+len(body)*25)
	resp[0] = 0x05
	binary.LittleEndian.PutUint16(resp[1:3], uint16(len(resp)-3))
	for i := 0; i < 25; i++ {
		copy(resp[3+i*len(body):], body)
	}
	return resp, true
}

type ripEmulator struct{}

func (ripEmulator) Respond(req []byte) ([]byte, bool) {
	// RIPv1 request (command 1, version 1).
	if len(req) < 4 || req[0] != 1 || req[1] != 1 {
		return nil, false
	}
	// Response: command 2, 25 route entries of 20 bytes each.
	resp := make([]byte, 4+25*20)
	resp[0], resp[1] = 2, 1
	for i := 0; i < 25; i++ {
		entry := resp[4+i*20:]
		binary.BigEndian.PutUint16(entry[0:2], 2) // AF_INET
		binary.BigEndian.PutUint32(entry[4:8], uint32(0x0a000000+i<<8))
		binary.BigEndian.PutUint32(entry[16:20], 1) // metric
	}
	return resp, true
}

type tftpEmulator struct{}

func (tftpEmulator) Respond(req []byte) ([]byte, bool) {
	// TFTP RRQ (opcode 1): filename, mode as NUL-terminated strings.
	if len(req) < 4 || binary.BigEndian.Uint16(req[0:2]) != 1 {
		return nil, false
	}
	if bytes.IndexByte(req[2:], 0) < 0 {
		return nil, false
	}
	// DATA block 1 with the amplified payload.
	body := amplify(int(60 * float64(maxInt(len(req), 8))))
	resp := make([]byte, 4+len(body))
	binary.BigEndian.PutUint16(resp[0:2], 3) // DATA
	binary.BigEndian.PutUint16(resp[2:4], 1) // block 1
	copy(resp[4:], body)
	return resp, true
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

package dnsserver

import (
	"net"
	"testing"
	"time"

	"doscope/internal/dnswire"
	"doscope/internal/dnszone"
	"doscope/internal/netx"
)

func testServer(t *testing.T) *Server {
	t.Helper()
	z := dnszone.New("com")
	if err := z.Add(dnswire.RR{Name: "www.shop.com", Type: dnswire.TypeA, Addr: netx.MustParseAddr("203.0.113.5"), TTL: 300}); err != nil {
		t.Fatal(err)
	}
	if err := z.Add(dnswire.RR{Name: "shop.com", Type: dnswire.TypeNS, Target: "ns1.hosting.com", TTL: 86400}); err != nil {
		t.Fatal(err)
	}
	s := New()
	s.AddZone(z)
	return s
}

func query(t *testing.T, name string, typ dnswire.Type) []byte {
	t.Helper()
	m := dnswire.Message{
		Header:    dnswire.Header{ID: 42, RecursionDesired: true},
		Questions: []dnswire.Question{{Name: name, Type: typ, Class: dnswire.ClassIN}},
	}
	data, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestHandleQueryAnswer(t *testing.T) {
	s := testServer(t)
	resp := s.HandleQuery(query(t, "www.shop.com", dnswire.TypeA))
	if resp == nil {
		t.Fatal("no response")
	}
	var m dnswire.Message
	if err := m.Unpack(resp); err != nil {
		t.Fatal(err)
	}
	if !m.Header.Response || !m.Header.Authoritative || m.Header.ID != 42 {
		t.Errorf("header = %+v", m.Header)
	}
	if len(m.Answers) != 1 || m.Answers[0].Addr != netx.MustParseAddr("203.0.113.5") {
		t.Errorf("answers = %v", m.Answers)
	}
}

func TestHandleQueryNXDomain(t *testing.T) {
	s := testServer(t)
	var m dnswire.Message
	if err := m.Unpack(s.HandleQuery(query(t, "www.gone.com", dnswire.TypeA))); err != nil {
		t.Fatal(err)
	}
	if m.Header.RCode != dnswire.RCodeNXDomain {
		t.Errorf("rcode = %v", m.Header.RCode)
	}
	if len(m.Authority) != 1 || m.Authority[0].Type != dnswire.TypeSOA {
		t.Errorf("authority = %v (want SOA)", m.Authority)
	}
}

func TestHandleQueryRefusedOutsideZones(t *testing.T) {
	s := testServer(t)
	var m dnswire.Message
	if err := m.Unpack(s.HandleQuery(query(t, "www.example.org", dnswire.TypeA))); err != nil {
		t.Fatal(err)
	}
	if m.Header.RCode != dnswire.RCodeRefused {
		t.Errorf("rcode = %v, want REFUSED", m.Header.RCode)
	}
}

func TestHandleQueryDropsGarbage(t *testing.T) {
	s := testServer(t)
	if resp := s.HandleQuery([]byte{1, 2, 3}); resp != nil {
		t.Error("garbage got a response")
	}
	// A response message must be dropped, not answered (reflection guard).
	m := dnswire.Message{Header: dnswire.Header{ID: 1, Response: true}}
	data, _ := m.Pack()
	if resp := s.HandleQuery(data); resp != nil {
		t.Error("response message got answered")
	}
}

func TestServeOverUDP(t *testing.T) {
	s := testServer(t)
	conn, err := net.ListenPacket("udp4", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = s.Serve(conn)
	}()

	client, err := net.Dial("udp4", conn.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := client.Write(query(t, "www.shop.com", dnswire.TypeA)); err != nil {
		t.Fatal(err)
	}
	_ = client.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 4096)
	n, err := client.Read(buf)
	if err != nil {
		t.Fatalf("no reply: %v", err)
	}
	var m dnswire.Message
	if err := m.Unpack(buf[:n]); err != nil {
		t.Fatal(err)
	}
	if len(m.Answers) != 1 {
		t.Errorf("answers = %v", m.Answers)
	}
	conn.Close()
	<-done
}

// Package dnsserver is a minimal authoritative UDP DNS server over the
// dnswire codec, serving dnszone content. The OpenINTEL-style measurement
// client exercises it over the loopback in integration tests and the
// dnsmeasure example; query handling is a pure function so it can also be
// tested without sockets.
package dnsserver

import (
	"errors"
	"net"
	"strings"
	"sync"

	"doscope/internal/dnswire"
	"doscope/internal/dnszone"
)

// Server answers queries from a set of zones.
type Server struct {
	mu    sync.RWMutex
	zones map[string]*dnszone.Zone
}

// New creates an empty server.
func New() *Server {
	return &Server{zones: make(map[string]*dnszone.Zone)}
}

// AddZone registers (or replaces) a zone.
func (s *Server) AddZone(z *dnszone.Zone) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.zones[z.Origin] = z
}

// zoneFor finds the zone with the longest matching origin suffix.
func (s *Server) zoneFor(name string) *dnszone.Zone {
	s.mu.RLock()
	defer s.mu.RUnlock()
	name = dnswire.NormalizeName(name)
	for {
		if z, ok := s.zones[name]; ok {
			return z
		}
		dot := strings.IndexByte(name, '.')
		if dot < 0 {
			return nil
		}
		name = name[dot+1:]
	}
}

// HandleQuery answers one wire-format query; it returns nil when the
// datagram is not a well-formed query (such datagrams are dropped).
func (s *Server) HandleQuery(req []byte) []byte {
	var q dnswire.Message
	if err := q.Unpack(req); err != nil || q.Header.Response || len(q.Questions) == 0 {
		return nil
	}
	resp := dnswire.Message{
		Header: dnswire.Header{
			ID:               q.Header.ID,
			Response:         true,
			OpCode:           q.Header.OpCode,
			Authoritative:    true,
			RecursionDesired: q.Header.RecursionDesired,
		},
		Questions: q.Questions[:1],
	}
	question := q.Questions[0]
	if q.Header.OpCode != 0 || question.Class != dnswire.ClassIN {
		resp.Header.RCode = dnswire.RCodeNotImp
		return mustPack(&resp)
	}
	zone := s.zoneFor(question.Name)
	if zone == nil {
		resp.Header.Authoritative = false
		resp.Header.RCode = dnswire.RCodeRefused
		return mustPack(&resp)
	}
	answers, rcode := zone.Lookup(question.Name, question.Type)
	resp.Header.RCode = rcode
	resp.Answers = answers
	if len(answers) == 0 {
		soa := zone.SOA()
		resp.Authority = []dnswire.RR{soa}
	}
	return mustPack(&resp)
}

func mustPack(m *dnswire.Message) []byte {
	data, err := m.Pack()
	if err != nil {
		// A response we constructed ourselves must always pack; failure is
		// a programming error surfaced loudly in tests.
		panic("dnsserver: packing response: " + err.Error())
	}
	return data
}

// Serve answers queries on conn until it is closed.
func (s *Server) Serve(conn net.PacketConn) error {
	buf := make([]byte, 4096)
	for {
		n, addr, err := conn.ReadFrom(buf)
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		if resp := s.HandleQuery(buf[:n]); resp != nil {
			_, _ = conn.WriteTo(resp, addr)
		}
	}
}

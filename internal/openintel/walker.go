package openintel

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"doscope/internal/dnswire"
	"doscope/internal/dnszone"
	"doscope/internal/dps"
	"doscope/internal/ipmeta"
	"doscope/internal/netx"
	"doscope/internal/webmodel"
)

// Resolver issues one DNS query. Implementations must be safe for
// concurrent use.
type Resolver interface {
	Query(name string, t dnswire.Type) (*dnswire.Message, error)
}

// WireResolver queries an authoritative server over UDP with timeouts,
// retries, and transaction-ID validation.
type WireResolver struct {
	ServerAddr string
	Timeout    time.Duration // per attempt; default 2s
	Retries    int           // default 2

	mu  sync.Mutex
	rng *rand.Rand
}

// NewWireResolver creates a resolver for the given "host:port".
func NewWireResolver(serverAddr string) *WireResolver {
	return &WireResolver{
		ServerAddr: serverAddr,
		Timeout:    2 * time.Second,
		Retries:    2,
		rng:        rand.New(rand.NewSource(time.Now().UnixNano())),
	}
}

func (r *WireResolver) nextID() uint16 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return uint16(r.rng.Intn(1 << 16))
}

// Query implements Resolver.
func (r *WireResolver) Query(name string, t dnswire.Type) (*dnswire.Message, error) {
	q := dnswire.Message{
		Header:    dnswire.Header{ID: r.nextID(), RecursionDesired: false},
		Questions: []dnswire.Question{{Name: name, Type: t, Class: dnswire.ClassIN}},
	}
	wire, err := q.Pack()
	if err != nil {
		return nil, err
	}
	var lastErr error
	for attempt := 0; attempt <= r.Retries; attempt++ {
		conn, err := net.Dial("udp", r.ServerAddr)
		if err != nil {
			return nil, err
		}
		resp, err := r.exchange(conn, wire, q.Header.ID)
		conn.Close()
		if err == nil {
			return resp, nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("openintel: query %s %v: %w", name, t, lastErr)
}

func (r *WireResolver) exchange(conn net.Conn, wire []byte, id uint16) (*dnswire.Message, error) {
	if err := conn.SetDeadline(time.Now().Add(r.Timeout)); err != nil {
		return nil, err
	}
	if _, err := conn.Write(wire); err != nil {
		return nil, err
	}
	buf := make([]byte, 4096)
	for {
		n, err := conn.Read(buf)
		if err != nil {
			return nil, err
		}
		var m dnswire.Message
		if err := m.Unpack(buf[:n]); err != nil {
			continue // junk datagram; keep waiting until deadline
		}
		if m.Header.ID != id || !m.Header.Response {
			continue // mismatched transaction: ignore (spoofing guard)
		}
		return &m, nil
	}
}

// Observation is one domain-day measurement: what the platform learned by
// querying the domain structurally.
type Observation struct {
	Domain     string
	WWWAddr    netx.Addr
	HasAddr    bool
	CNAME      string
	NS         []string
	DataPoints int
}

// Walker performs the per-domain structural measurement: an A query on the
// www label (capturing CNAME expansions) and an NS query on the registered
// domain — the records the paper's analyses need.
type Walker struct {
	Resolver Resolver
}

// MeasureDomain measures one registered domain.
func (w *Walker) MeasureDomain(domain string) (Observation, error) {
	obs := Observation{Domain: domain}
	aResp, err := w.Resolver.Query("www."+domain, dnswire.TypeA)
	if err != nil {
		return obs, err
	}
	for _, rr := range aResp.Answers {
		obs.DataPoints++
		switch rr.Type {
		case dnswire.TypeCNAME:
			obs.CNAME = rr.Target
		case dnswire.TypeA:
			obs.WWWAddr = rr.Addr
			obs.HasAddr = true
		}
	}
	nsResp, err := w.Resolver.Query(domain, dnswire.TypeNS)
	if err != nil {
		return obs, err
	}
	for _, rr := range nsResp.Answers {
		if rr.Type == dnswire.TypeNS {
			obs.NS = append(obs.NS, rr.Target)
			obs.DataPoints++
		}
	}
	return obs, nil
}

// Measure walks a list of domains with bounded concurrency, preserving
// input order in the result.
func (w *Walker) Measure(domains []string, concurrency int) ([]Observation, error) {
	if concurrency < 1 {
		concurrency = 8
	}
	out := make([]Observation, len(domains))
	errs := make([]error, len(domains))
	sem := make(chan struct{}, concurrency)
	var wg sync.WaitGroup
	for i := range domains {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			out[i], errs[i] = w.MeasureDomain(domains[i])
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

// DetectProvider classifies one observation with the DPS methodology.
func DetectProvider(det *dps.Detector, obs Observation, plan *ipmeta.Plan) dps.Provider {
	st := dps.DNSState{NS: obs.NS, CNAME: obs.CNAME}
	if obs.HasAddr && plan != nil {
		if asn, ok := plan.ASOf(obs.WWWAddr); ok {
			st.AASN = asn
		}
	}
	return det.Detect(st)
}

// ZonesForDay materializes authoritative zone files for the synthetic Web
// population as they would look on the given day, for serving with
// dnsserver. Intended for integration tests and examples; materializing
// all 731 days at full scale is exactly the data volume the paper's
// Table 2 reports, so callers should restrict the domain set.
func ZonesForDay(pop *webmodel.Population, day int, domainIDs []uint32) (map[string]*dnszone.Zone, error) {
	zones := map[string]*dnszone.Zone{
		"com": dnszone.New("com"),
		"net": dnszone.New("net"),
		"org": dnszone.New("org"),
	}
	for _, id := range domainIDs {
		if !pop.Alive(id, day) {
			continue
		}
		d := &pop.Domains[id]
		zone := zones[d.TLD.String()]
		name := pop.DomainName(id)
		st := pop.DNSStateOf(id, day)
		for _, ns := range st.NS {
			if err := zone.Add(dnswire.RR{Name: name, Type: dnswire.TypeNS, TTL: 86400, Target: ns}); err != nil {
				return nil, err
			}
		}
		www := "www." + name
		addr := pop.AddrOf(id, day)
		if st.CNAME != "" {
			if err := zone.Add(dnswire.RR{Name: www, Type: dnswire.TypeCNAME, TTL: 300, Target: st.CNAME}); err != nil {
				return nil, err
			}
			// The chain target lives outside the measured zone in general;
			// host it here when it happens to fall inside.
			target := dnswire.NormalizeName(st.CNAME)
			if zone.Contains(target) {
				if err := zone.Add(dnswire.RR{Name: target, Type: dnswire.TypeA, TTL: 300, Addr: addr}); err != nil {
					return nil, err
				}
			}
		} else {
			if err := zone.Add(dnswire.RR{Name: www, Type: dnswire.TypeA, TTL: 300, Addr: addr}); err != nil {
				return nil, err
			}
		}
	}
	return zones, nil
}

package openintel

import (
	"net"
	"testing"

	"doscope/internal/dnsserver"
	"doscope/internal/dps"
	"doscope/internal/ipmeta"
	"doscope/internal/webmodel"
)

func testWorld(t testing.TB) (*ipmeta.Plan, *webmodel.Population) {
	t.Helper()
	plan, err := ipmeta.BuildPlan(ipmeta.PlanConfig{Seed: 1, NumSixteens: 512, NumActive24: 3000})
	if err != nil {
		t.Fatal(err)
	}
	pop, err := webmodel.Build(webmodel.Config{Seed: 7, NumDomains: 30000, Plan: plan}, nil)
	if err != nil {
		t.Fatal(err)
	}
	pop.ApplyMigrations(3, []webmodel.AttackExposure{})
	return plan, pop
}

func TestFromWebModelHistory(t *testing.T) {
	plan, pop := testWorld(t)
	det := dps.NewDetector(plan)
	h := FromWebModel(pop, det, 731)
	if h.NumDomains() != pop.NumDomains() {
		t.Fatalf("history domains = %d", h.NumDomains())
	}

	// Front-pool sites must be preexisting for their whole lifetime.
	front, _ := pop.PoolByName("CloudFlareFront")
	id := front.Sites[0]
	if !h.Preexisting(id) {
		t.Error("front site not preexisting")
	}
	day, prov, ok := h.FirstProtectedDay(id)
	if !ok || prov != dps.CloudFlare || day != h.BirthDay(id) {
		t.Errorf("FirstProtectedDay = %d,%v,%v", day, prov, ok)
	}

	// Bulk-migrated Wix sites flip provider at the migration day. Pick a
	// site that existed before the trigger: sites born after the bulk
	// migration are first seen already protected and correctly measure as
	// preexisting instead.
	wix, _ := pop.PoolByName("Wix")
	var wid uint32
	foundOld := false
	for _, id := range wix.Sites {
		if pop.Domains[id].BirthDay == 0 {
			wid, foundOld = id, true
			break
		}
	}
	if !foundOld {
		t.Fatal("no day-0 Wix site")
	}
	migDay := int(pop.Domains[wid].MigDay)
	if migDay < 0 {
		t.Fatal("wix site did not migrate")
	}
	if got := h.ProviderAt(wid, migDay-1); got != dps.None {
		t.Errorf("provider before migration = %v", got)
	}
	if got := h.ProviderAt(wid, migDay); got != dps.Incapsula {
		t.Errorf("provider at migration = %v", got)
	}
	if h.Preexisting(wid) {
		t.Error("migrated site flagged preexisting")
	}
	// The address must move on migration.
	a1, _ := h.AddrAt(wid, migDay-1)
	a2, _ := h.AddrAt(wid, migDay)
	if a1 == a2 {
		t.Error("address did not move on migration")
	}

	// Unprotected GoDaddy sites never protected.
	gd, _ := pop.PoolByName("GoDaddy")
	if _, _, ok := h.FirstProtectedDay(gd.Sites[0]); ok {
		t.Error("GoDaddy site reported protected")
	}
}

func TestHistoryAddrBeforeBirth(t *testing.T) {
	plan, pop := testWorld(t)
	h := FromWebModel(pop, dps.NewDetector(plan), 731)
	for id := uint32(0); id < uint32(pop.NumDomains()); id++ {
		if b := h.BirthDay(id); b > 0 {
			if _, ok := h.AddrAt(id, b-1); ok {
				t.Fatalf("domain %d resolves before birth", id)
			}
			return
		}
	}
	t.Skip("no newborn domain in sample")
}

func TestReverseIndex(t *testing.T) {
	plan, pop := testWorld(t)
	h := FromWebModel(pop, dps.NewDetector(plan), 731)
	rev := h.BuildReverseIndex()
	day := 100
	gd, _ := pop.PoolByName("GoDaddy")
	addr := gd.IPs[0]
	n := rev.CountSitesOn(addr, day)
	want := pop.CountSitesOn(addr, day)
	if n != want {
		t.Errorf("reverse index count = %d, ground truth = %d", n, want)
	}
	if n == 0 {
		t.Error("no sites on GoDaddy IP")
	}
	if !rev.HasAddr(addr) {
		t.Error("HasAddr false for hosting IP")
	}
	if rev.HasAddr(0x01010101) {
		t.Error("HasAddr true for random IP")
	}
	// Every domain the index reports must indeed resolve there.
	rev.ForEachSiteOn(addr, day, func(id uint32) {
		if got, ok := h.AddrAt(id, day); !ok || got != addr {
			t.Fatalf("index lists domain %d not actually on %v", id, addr)
		}
	})
}

func TestDataPointsPositive(t *testing.T) {
	plan, pop := testWorld(t)
	h := FromWebModel(pop, dps.NewDetector(plan), 731)
	dp := h.DataPoints()
	// ~2 data points per domain-day; most domains alive the whole window.
	min := uint64(pop.NumDomains()) * 731
	if dp < min {
		t.Errorf("DataPoints = %d, want >= %d", dp, min)
	}
}

// TestWireWalkMatchesModel is the key integration test: serve a sample of
// the synthetic population through the real UDP DNS server, measure it
// with the real wire walker, and verify the measurements agree with the
// model-derived history.
func TestWireWalkMatchesModel(t *testing.T) {
	plan, pop := testWorld(t)
	det := dps.NewDetector(plan)
	h := FromWebModel(pop, det, 731)

	day := 650 // after the Wix bulk migration
	// Sample: front site, Wix site (post-migration), GoDaddy site, single.
	var ids []uint32
	for _, name := range []string{"CloudFlareFront", "Wix", "GoDaddy", "DOSarrestFront"} {
		pool, ok := pop.PoolByName(name)
		if !ok {
			t.Fatalf("missing pool %s", name)
		}
		ids = append(ids, pool.Sites[0], pool.Sites[1])
	}
	for id := uint32(0); id < uint32(pop.NumDomains()) && len(ids) < 12; id++ {
		if pop.Domains[id].Pool == -1 && pop.Alive(id, day) {
			ids = append(ids, id)
		}
	}

	zones, err := ZonesForDay(pop, day, ids)
	if err != nil {
		t.Fatal(err)
	}
	srv := dnsserver.New()
	for _, z := range zones {
		srv.AddZone(z)
	}
	conn, err := net.ListenPacket("udp4", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(conn) }()
	defer conn.Close()

	walker := &Walker{Resolver: NewWireResolver(conn.LocalAddr().String())}
	var names []string
	for _, id := range ids {
		names = append(names, pop.DomainName(id))
	}
	observations, err := walker.Measure(names, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, obs := range observations {
		id := ids[i]
		if !pop.Alive(id, day) {
			continue
		}
		gotProv := DetectProvider(det, obs, plan)
		wantProv := h.ProviderAt(id, day)
		if gotProv != wantProv {
			t.Errorf("domain %s: wire detection %v, model %v (obs %+v)", obs.Domain, gotProv, wantProv, obs)
		}
		wantAddr, _ := h.AddrAt(id, day)
		if obs.HasAddr && obs.WWWAddr != wantAddr {
			t.Errorf("domain %s: wire addr %v, model %v", obs.Domain, obs.WWWAddr, wantAddr)
		}
		if obs.DataPoints == 0 {
			t.Errorf("domain %s: no data points", obs.Domain)
		}
	}
}

func TestWireResolverRetriesExhausted(t *testing.T) {
	r := NewWireResolver("127.0.0.1:1") // nothing listens there
	r.Timeout = 50 * 1e6                // 50ms
	r.Retries = 1
	if _, err := r.Query("www.example.com", 1); err == nil {
		t.Error("query against dead server succeeded")
	}
}

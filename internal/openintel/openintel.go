// Package openintel reproduces the role the OpenINTEL active DNS
// measurement platform plays in the paper (§3.2): structural daily
// measurement of all domains in .com/.net/.org, yielding the historical
// mapping between Web sites (www labels) and the IP addresses hosting
// them, plus the DPS-use data set derived from NS/CNAME/A evidence.
//
// Two acquisition paths share one output type (History):
//
//   - the wire path measures a live authoritative server through the
//     dnswire codec, exactly like the real platform queries the real DNS
//     (used in integration tests and the dnsmeasure example), and
//   - the model path derives the same per-domain timelines directly from
//     the synthetic Web ecosystem, which is behaviourally equivalent to
//     walking every domain every day but feasible at full simulated scale.
package openintel

import (
	"sort"

	"doscope/internal/dps"
	"doscope/internal/netx"
	"doscope/internal/webmodel"
)

// Segment is one homogeneous stretch of a domain's DNS state: the www
// label resolves to Addr and the domain is (or is not) behind a DPS.
type Segment struct {
	From, To int32 // day indexes, inclusive
	Addr     netx.Addr
	Provider dps.Provider
}

// History holds per-domain measurement timelines for the whole window.
type History struct {
	WindowDays int
	// Segments[id] are ordered, non-overlapping day ranges.
	Segments [][]Segment
	// TLD[id] is the domain's TLD (webmodel.TLD values).
	TLD []uint8
}

// FromWebModel derives the History the daily walker would have measured,
// by evaluating each domain's DNS state through the same detector at its
// change points (birth and migration day).
func FromWebModel(pop *webmodel.Population, det *dps.Detector, windowDays int) *History {
	h := &History{
		WindowDays: windowDays,
		Segments:   make([][]Segment, pop.NumDomains()),
		TLD:        make([]uint8, pop.NumDomains()),
	}
	for id := 0; id < pop.NumDomains(); id++ {
		d := &pop.Domains[id]
		h.TLD[id] = uint8(d.TLD)
		birth := int32(d.BirthDay)
		if int(birth) >= windowDays {
			continue
		}
		changeDays := []int32{birth}
		if d.MigDay > birth && int(d.MigDay) < windowDays {
			changeDays = append(changeDays, d.MigDay)
		}
		var segs []Segment
		for i, from := range changeDays {
			to := int32(windowDays - 1)
			if i+1 < len(changeDays) {
				to = changeDays[i+1] - 1
			}
			day := int(from)
			segs = append(segs, Segment{
				From: from, To: to,
				Addr:     pop.AddrOf(uint32(id), day),
				Provider: det.Detect(pop.DNSStateOf(uint32(id), day)),
			})
		}
		h.Segments[id] = segs
	}
	return h
}

// NumDomains returns the number of measured domains.
func (h *History) NumDomains() int { return len(h.Segments) }

// BirthDay returns the first day a domain was seen, or -1 if never.
func (h *History) BirthDay(id uint32) int {
	segs := h.Segments[id]
	if len(segs) == 0 {
		return -1
	}
	return int(segs[0].From)
}

// AddrAt returns the www address of a domain on a day.
func (h *History) AddrAt(id uint32, day int) (netx.Addr, bool) {
	for _, s := range h.Segments[id] {
		if int(s.From) <= day && day <= int(s.To) {
			return s.Addr, true
		}
	}
	return 0, false
}

// ProviderAt returns the detected DPS provider on a day.
func (h *History) ProviderAt(id uint32, day int) dps.Provider {
	for _, s := range h.Segments[id] {
		if int(s.From) <= day && day <= int(s.To) {
			return s.Provider
		}
	}
	return dps.None
}

// FirstProtectedDay returns the first day the domain was seen behind a
// DPS, with the provider; ok is false if it never was.
func (h *History) FirstProtectedDay(id uint32) (int, dps.Provider, bool) {
	for _, s := range h.Segments[id] {
		if s.Provider != dps.None {
			return int(s.From), s.Provider, true
		}
	}
	return 0, dps.None, false
}

// Preexisting reports whether the domain was protected from its first
// observation (the paper's "preexisting customer" class).
func (h *History) Preexisting(id uint32) bool {
	segs := h.Segments[id]
	return len(segs) > 0 && segs[0].Provider != dps.None
}

// DataPoints estimates the total measurement data points collected over
// the window, Table 2 style: one A observation per domain-day plus one NS
// observation per domain-day (CNAME chains add one more).
func (h *History) DataPoints() uint64 {
	var total uint64
	for id := range h.Segments {
		for _, s := range h.Segments[id] {
			days := uint64(s.To - s.From + 1)
			total += days * 2
		}
	}
	return total
}

// --- reverse index -------------------------------------------------------

type revEntry struct {
	from, to int32
	id       uint32
}

// ReverseIndex answers "which Web sites were on this address on this day",
// the join at the heart of §5.
type ReverseIndex struct {
	m map[netx.Addr][]revEntry
}

// BuildReverseIndex inverts the history.
func (h *History) BuildReverseIndex() *ReverseIndex {
	r := &ReverseIndex{m: make(map[netx.Addr][]revEntry)}
	for id := range h.Segments {
		for _, s := range h.Segments[id] {
			r.m[s.Addr] = append(r.m[s.Addr], revEntry{s.From, s.To, uint32(id)})
		}
	}
	for addr := range r.m {
		entries := r.m[addr]
		sort.Slice(entries, func(i, j int) bool { return entries[i].from < entries[j].from })
	}
	return r
}

// ForEachSiteOn visits the domains hosted on addr on the given day.
func (r *ReverseIndex) ForEachSiteOn(addr netx.Addr, day int, fn func(id uint32)) {
	for _, e := range r.m[addr] {
		if int(e.from) <= day && day <= int(e.to) {
			fn(e.id)
		}
	}
}

// CountSitesOn counts domains hosted on addr on the given day.
func (r *ReverseIndex) CountSitesOn(addr netx.Addr, day int) int {
	n := 0
	r.ForEachSiteOn(addr, day, func(uint32) { n++ })
	return n
}

// HasAddr reports whether the address ever hosted a measured site.
func (r *ReverseIndex) HasAddr(addr netx.Addr) bool {
	return len(r.m[addr]) > 0
}

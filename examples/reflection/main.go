// Reflection: run AmpPot honeypot instances on real loopback UDP sockets,
// launch an NTP-monlist amplification burst against them, observe the
// rate limiter suppressing replies, and extract the attack event — the
// §3.1.2 path over real sockets. Run with:
//
//	go run ./examples/reflection
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	"doscope/internal/amppot"
	"doscope/internal/attack"
)

func main() {
	cfg := amppot.DefaultConfig()
	fleet := amppot.NewFleet(cfg)

	// Bind three honeypot instances to loopback ports (in the wild they
	// would sit on NTP's port 123 across 24 vantage points).
	const instances = 3
	var addrs []string
	for i := 0; i < instances; i++ {
		conn, err := net.ListenPacket("udp4", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		defer conn.Close()
		addrs = append(addrs, conn.LocalAddr().String())
		go func(hp int) { _ = fleet.Honeypot(hp).Serve(conn, attack.VectorNTP) }(i)
	}
	fmt.Printf("%d AmpPot instances on %v\n", instances, addrs)

	// The attacker sprays monlist requests across all reflectors. On
	// loopback we cannot spoof the victim's source address, so the
	// honeypots log the attack against this client address — exactly what
	// AmpPot records for the real (spoofed) victim.
	monlist := make([]byte, 8)
	monlist[0] = 0x17 // NTP mode 7 private
	monlist[3] = 42   // MON_GETLIST_1

	replies, amplifiedBytes := 0, 0
	const burst = 120 // > the 100-request attack threshold
	for i := 0; i < burst; i++ {
		conn, err := net.Dial("udp4", addrs[i%len(addrs)])
		if err != nil {
			log.Fatal(err)
		}
		if _, err := conn.Write(monlist); err != nil {
			log.Fatal(err)
		}
		_ = conn.(*net.UDPConn).SetReadDeadline(time.Now().Add(50 * time.Millisecond))
		buf := make([]byte, 65536)
		if n, err := conn.(*net.UDPConn).Read(buf); err == nil {
			replies++
			amplifiedBytes += n
		}
		conn.Close()
	}
	fmt.Printf("sent %d monlist requests (%d bytes each)\n", burst, len(monlist))
	fmt.Printf("got %d replies (%d bytes): the <3 pkts/min limiter keeps the honeypot from amplifying\n",
		replies, amplifiedBytes)
	if replies > 0 {
		fmt.Printf("achieved amplification on answered requests: %.0fx\n",
			float64(amplifiedBytes)/float64(replies*len(monlist)))
	}

	// Every request was logged regardless; the collector aggregates them
	// into one attack event per victim and vector.
	time.Sleep(100 * time.Millisecond)
	events := fleet.Flush()
	for _, e := range events {
		fmt.Printf("attack event: victim=%v vector=%v requests=%d avg %.1f rps\n",
			e.Target, e.Vector, e.Packets, e.AvgRPS)
	}
	if len(events) == 0 {
		fmt.Println("no attack event (below the >100 request threshold?)")
	}
}

// Quickstart: generate a small calibrated scenario, fuse the two attack
// data sets with the DNS measurement history, and print the paper's
// headline numbers. Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"doscope/internal/core"
	"doscope/internal/dossim"
	"doscope/internal/report"
)

func main() {
	// Scale 0.0005 means 1/2000 of the paper's 20.9M attack events and
	// 210M Web sites; every percentage and distribution shape is
	// preserved.
	sc, err := dossim.Generate(dossim.Config{Seed: 1, Scale: 0.0005})
	if err != nil {
		log.Fatal(err)
	}

	ds := core.New(sc.Telescope, sc.Honeypot, sc.Plan, sc.History, sc.Cfg.WindowDays)

	// Table 1: the two attack-event data sets and their combination.
	fmt.Print(report.Table1(ds.Table1()))
	fmt.Println()

	// The "one third of the Internet" headline: attacked /24 blocks
	// against the active /24 space.
	attacked24 := ds.TargetsIn24s()
	active24 := sc.Plan.NumActive24()
	fmt.Printf("attacked /24 blocks: %d of %d active (%.0f%%)\n\n",
		attacked24, active24, 100*float64(attacked24)/float64(active24))

	// §5: two thirds of Web sites live on attacked IPs; ~3% are involved
	// daily.
	fmt.Print(report.WebImpact(ds.WebImpactStats()))
	fmt.Println()

	// §6: intense attacks accelerate migration to a protection service.
	fmt.Print(report.Figure10(ds.Figure10()))
}

// HTTP query-serving walkthrough: one dosqueryd-style server fronting
// a local capture and a federated honeypot site behind the same URLs —
// the consumer-facing face of the query plane. A plain HTTP client
// counts, filters, streams events, and fetches a figure; the program
// checks each answer against direct in-process execution and shows the
// version-keyed response cache turning over on ingest. Run with:
//
//	go run ./examples/httpquery
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"strings"

	"doscope/internal/attack"
	"doscope/internal/dossim"
	"doscope/internal/federation"
	"doscope/internal/httpapi"
	"doscope/internal/netx"
)

func main() {
	// One calibrated scenario split the way real deployments are: the
	// telescope capture local to the serving process, the honeypot
	// capture behind a DOSFED01 federation site.
	sc, err := dossim.Generate(dossim.Config{Seed: 7, Scale: 0.0002})
	if err != nil {
		log.Fatal(err)
	}
	siteL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go federation.NewServer(sc.Honeypot).Serve(siteL)
	remote := federation.Dial(siteL.Addr().String())
	defer remote.Close()

	// The HTTP server fans every request out to both backends, exactly
	// like attack.QueryBackends(sc.Telescope, remote).
	srv := httpapi.NewServer([]attack.Queryable{sc.Telescope, remote})
	httpL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(httpL)
	base := "http://" + httpL.Addr().String()
	fmt.Printf("serving %d local + %d federated events on %s\n",
		sc.Telescope.Len(), sc.Honeypot.Len(), base)

	// Counting terminals are URLs; filters are the plan grammar.
	var count struct {
		Plan  string `json:"plan"`
		Count int    `json:"count"`
	}
	getJSON(base+"/v1/count?vectors=NTP,DNS&days=0..364", &count)
	local, err := attack.QueryBackends(sc.Telescope, remote).
		Vectors(attack.VectorNTP, attack.VectorDNS).Days(0, 364).Count()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nNTP+DNS events, first year: %d (direct execution: %d)\n", count.Count, local)
	fmt.Printf("the response echoes its compiled plan: plan=%s\n", count.Plan)

	// The echoed base64 plan replays the same query — what doscope
	// -plan prints, and what the DOSFED01 wire ships.
	var replay struct {
		Count int `json:"count"`
	}
	getJSON(base+"/v1/count?plan="+count.Plan, &replay)
	fmt.Printf("replayed via plan=: %d\n", replay.Count)

	// /v1/events streams NDJSON pages in global start order; the
	// trailer line carries the cursor that resumes after the last event.
	resp, err := http.Get(base + "/v1/events?limit=5")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nfirst events page:")
	sc2 := bufio.NewScanner(resp.Body)
	for sc2.Scan() {
		line := sc2.Text()
		if strings.Contains(line, `"page"`) {
			fmt.Println("  trailer:", line)
		} else {
			fmt.Println(" ", line)
		}
	}
	resp.Body.Close()

	// Counting responses cache between ingest batches, keyed by the
	// version vector of ALL backends — including the federated site.
	getJSON(base+"/v1/count", &count)
	getJSON(base+"/v1/count", &count) // served from cache
	var stats struct {
		CacheHits   uint64 `json:"cache_hits"`
		CacheMisses uint64 `json:"cache_misses"`
	}
	getJSON(base+"/v1/stats", &stats)
	fmt.Printf("\ncache after a repeat query: %d hits, %d misses\n", stats.CacheHits, stats.CacheMisses)

	before := count.Count
	sc.Telescope.Add(attack.Event{
		Source: attack.SourceTelescope, Vector: attack.VectorTCP,
		Target: netx.AddrFrom4(203, 0, 113, 9),
		Start:  attack.WindowStart, End: attack.WindowStart + 60,
		Packets: 1000, Bytes: 64000, MaxPPS: 100,
	})
	getJSON(base+"/v1/count", &count)
	fmt.Printf("after ingesting one event the cache invalidates: %d -> %d\n", before, count.Count)

	// Figures are aggregates over the same backends; Figure 1 comes
	// straight off the per-day count indexes.
	var fig struct {
		Combined []int `json:"combined"`
	}
	getJSON(base+"/v1/figures/1", &fig)
	peak, peakDay := 0, 0
	for d, n := range fig.Combined {
		if n > peak {
			peak, peakDay = n, d
		}
	}
	fmt.Printf("\nfigure 1 peak: %d events on day %d\n", peak, peakDay)
}

func getJSON(url string, out any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}

// Migration: reproduce the §6 study — classify Web sites into the
// Figure 8 taxonomy, compare attack frequency for migrating vs all
// attacked sites (Figure 9), and show how attack intensity accelerates
// migration to a DDoS Protection Service (Figures 10 and 11). Run with:
//
//	go run ./examples/migration
package main

import (
	"fmt"
	"log"

	"doscope/internal/core"
	"doscope/internal/dossim"
	"doscope/internal/report"
)

func main() {
	sc, err := dossim.Generate(dossim.Config{Seed: 6, Scale: 0.001})
	if err != nil {
		log.Fatal(err)
	}
	ds := core.New(sc.Telescope, sc.Honeypot, sc.Plan, sc.History, sc.Cfg.WindowDays)

	fmt.Print(report.Figure8(ds.Figure8()))
	fmt.Println()
	fmt.Print(report.Figure9(ds.Figure9()))
	fmt.Println()
	fmt.Print(report.Figure10(ds.Figure10()))
	fmt.Println()
	fmt.Print(report.Figure11(ds.Figure11()))
	fmt.Println()

	// The two hoster case studies the paper calls out: Wix-like bulk
	// migration the day after an intense >=4h attack, and an eNom-like
	// hoster taking 101 days.
	for _, name := range []string{"Wix", "eNom"} {
		pool, ok := sc.Web.PoolByName(name)
		if !ok || pool.Bulk == nil {
			continue
		}
		migrated := 0
		for _, id := range pool.Sites {
			if sc.Web.Domains[id].MigDay >= 0 {
				migrated++
			}
		}
		fmt.Printf("%s: %d of %d sites migrated to %v, %d days after the day-%d trigger attack\n",
			name, migrated, len(pool.Sites), pool.Bulk.To, pool.Bulk.DelayDays, pool.Bulk.TriggerDay)
	}
}

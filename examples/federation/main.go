// Federation walkthrough: two sensor sites — a telescope vantage and an
// AmpPot honeypot fleet, the paper's two independent data sets — each
// served by a federation.Server, joined by a client into one
// Figure-1-style macroscopic aggregate without any event leaving a
// site. Run with:
//
//	go run ./examples/federation
//
// With -chaos, the walkthrough continues into degraded mode: the
// honeypot site is routed through a fault-injecting proxy
// (internal/faultnet), blackholed mid-demo, and the same federated
// query keeps answering from the surviving site — partial results with
// per-site status, the circuit breaker opening, and the site rejoining
// automatically once healed.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"time"

	"doscope/internal/attack"
	"doscope/internal/dossim"
	"doscope/internal/faultnet"
	"doscope/internal/federation"
	"doscope/internal/netx"
)

func main() {
	chaos := flag.Bool("chaos", false, "after the aggregate, blackhole the honeypot site and walk through degraded mode")
	flag.Parse()
	// One calibrated scenario, split across two "sites" the way the
	// real deployments are: the telescope store at one vantage, the
	// honeypot store at another.
	sc, err := dossim.Generate(dossim.Config{Seed: 7, Scale: 0.0002})
	if err != nil {
		log.Fatal(err)
	}

	siteA := serveSite(sc.Telescope)
	siteB := serveSite(sc.Honeypot)
	fmt.Printf("site A (telescope) on %s: %d events\n", siteA, sc.Telescope.Len())
	fmt.Printf("site B (honeypot)  on %s: %d events\n", siteB, sc.Honeypot.Len())

	// With -chaos, site B sits behind a fault-injecting proxy so the
	// demo can injure and heal it; the client gets fast failure
	// detection and an aggressive breaker so the walkthrough is brisk.
	dialB := siteB
	var proxy *faultnet.Proxy
	var optsB []federation.Option
	if *chaos {
		p, err := faultnet.Listen(siteB, faultnet.Faults{})
		if err != nil {
			log.Fatal(err)
		}
		defer p.Close()
		proxy, dialB = p, p.Addr()
		optsB = []federation.Option{
			federation.WithAttempts(1),
			federation.WithDialTimeout(500 * time.Millisecond),
			federation.WithRequestTimeout(500 * time.Millisecond),
			federation.WithBreaker(2, 200*time.Millisecond),
			federation.WithHealthProbe(100 * time.Millisecond),
		}
	}

	// The analysis plane: RemoteStores satisfy attack.Queryable, so the
	// federated query reads exactly like a local QueryStores plan.
	ra, rb := federation.Dial(siteA), federation.Dial(dialB, optsB...)
	defer ra.Close()
	defer rb.Close()
	fed := attack.QueryBackends(ra, rb)

	total, err := fed.Count()
	if err != nil {
		log.Fatal(err)
	}
	perVec, err := fed.CountByVector()
	if err != nil {
		log.Fatal(err)
	}
	perDay, err := fed.CountByDay()
	if err != nil {
		log.Fatal(err)
	}

	// The same numbers computed locally: federation is exact, not
	// approximate — counting partials merge to byte-identical results.
	local := attack.QueryStores(sc.Telescope, sc.Honeypot)
	fmt.Printf("\nfederated total: %d events (local check: %d)\n", total, local.Count())

	fmt.Println("\nper-vector mix across both sites:")
	for v := 0; v < attack.NumVectors; v++ {
		if perVec[v] > 0 {
			fmt.Printf("  %-8s %6d\n", attack.Vector(v), perVec[v])
		}
	}

	// Figure 1 is the daily combined series; print its first weeks.
	fmt.Println("\ndaily combined series (first 4 weeks):")
	for week := 0; week < 4; week++ {
		n := 0
		for d := 7 * week; d < 7*(week+1); d++ {
			n += perDay[d]
		}
		fmt.Printf("  week %d: %4d events\n", week+1, n)
	}

	// Counting queries ship index partials, not events: the bytes on
	// the wire are a tiny fraction of the captures they summarize.
	var sent, recv uint64
	for _, r := range []*federation.RemoteStore{ra, rb} {
		s, v := r.WireBytes()
		sent, recv = sent+s, recv+v
	}
	fmt.Printf("\nwire traffic for the whole aggregate: %d bytes out, %d back\n", sent, recv)

	// Iteration terminals do fetch events — as DOSEVT02 segments opened
	// zero-copy — e.g. to inspect one victim across both vantages.
	events, err := fed.Target(mostAttacked(perDayStore(sc))).Events()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("events on the most-attacked target, fetched across sites: %d\n", len(events))

	if *chaos {
		// A fresh query: fed still carries the target filter above.
		chaosWalkthrough(attack.QueryBackends(ra, rb), proxy, rb, sc.Telescope)
	}
}

// chaosWalkthrough injures site B and shows the degraded-mode story:
// partial results with per-site status, the circuit breaker opening,
// and automatic rejoin after healing.
func chaosWalkthrough(fed *attack.FedQuery, proxy *faultnet.Proxy, rb *federation.RemoteStore, telescope *attack.Store) {
	fmt.Println("\n--- chaos: blackholing the honeypot site ---")
	proxy.SetFaults(faultnet.Faults{Blackhole: true})

	n, statuses, err := fed.CountPartial()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("degraded federated count: %d (telescope-only check: %d)\n", n, telescope.Query().Count())
	for _, st := range statuses {
		if st.Err != nil {
			fmt.Printf("  site %d: %s (%v)\n", st.Backend, st.State, st.Err)
		} else {
			fmt.Printf("  site %d: %s\n", st.Backend, st.State)
		}
	}

	// A second failure trips the two-failure breaker: from here the
	// dead site is skipped in memory instead of costing its timeout.
	if _, _, err := fed.CountPartial(); err != nil {
		log.Fatal(err)
	}
	bst, _ := rb.Breaker()
	fmt.Printf("site B breaker: %s after %d consecutive failures\n", bst.State, bst.Failures)
	start := time.Now()
	if _, _, err := fed.CountPartial(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query with the breaker open: %v (no dial, no timeout)\n",
		time.Since(start).Round(time.Millisecond))

	fmt.Println("\n--- chaos: healing the site ---")
	proxy.Heal()
	for {
		if bst, _ := rb.Breaker(); bst.State == federation.BreakerClosed {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	n, statuses, err = fed.CountPartial()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("health probe closed the breaker; federated count back to %d (degraded: %v)\n",
		n, attack.Degraded(statuses))
}

// serveSite starts a federation server for st on a loopback listener
// and returns its address.
func serveSite(st *attack.Store) string {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go federation.NewServer(st).Serve(l)
	return l.Addr().String()
}

// perDayStore joins the scenario's stores for the target scan below.
func perDayStore(sc *dossim.Scenario) *attack.Query {
	return attack.QueryStores(sc.Telescope, sc.Honeypot)
}

// mostAttacked returns the target with the most events.
func mostAttacked(q *attack.Query) (best netx.Addr) {
	counts := map[netx.Addr]int{}
	for e := range q.Iter() {
		counts[e.Target]++
	}
	max := 0
	for t, n := range counts {
		if n > max || (n == max && t < best) {
			best, max = t, n
		}
	}
	return best
}

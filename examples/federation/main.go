// Federation walkthrough: two sensor sites — a telescope vantage and an
// AmpPot honeypot fleet, the paper's two independent data sets — each
// served by a federation.Server, joined by a client into one
// Figure-1-style macroscopic aggregate without any event leaving a
// site. Run with:
//
//	go run ./examples/federation
package main

import (
	"fmt"
	"log"
	"net"

	"doscope/internal/attack"
	"doscope/internal/dossim"
	"doscope/internal/federation"
	"doscope/internal/netx"
)

func main() {
	// One calibrated scenario, split across two "sites" the way the
	// real deployments are: the telescope store at one vantage, the
	// honeypot store at another.
	sc, err := dossim.Generate(dossim.Config{Seed: 7, Scale: 0.0002})
	if err != nil {
		log.Fatal(err)
	}

	siteA := serveSite(sc.Telescope)
	siteB := serveSite(sc.Honeypot)
	fmt.Printf("site A (telescope) on %s: %d events\n", siteA, sc.Telescope.Len())
	fmt.Printf("site B (honeypot)  on %s: %d events\n", siteB, sc.Honeypot.Len())

	// The analysis plane: RemoteStores satisfy attack.Queryable, so the
	// federated query reads exactly like a local QueryStores plan.
	ra, rb := federation.Dial(siteA), federation.Dial(siteB)
	defer ra.Close()
	defer rb.Close()
	fed := attack.QueryBackends(ra, rb)

	total, err := fed.Count()
	if err != nil {
		log.Fatal(err)
	}
	perVec, err := fed.CountByVector()
	if err != nil {
		log.Fatal(err)
	}
	perDay, err := fed.CountByDay()
	if err != nil {
		log.Fatal(err)
	}

	// The same numbers computed locally: federation is exact, not
	// approximate — counting partials merge to byte-identical results.
	local := attack.QueryStores(sc.Telescope, sc.Honeypot)
	fmt.Printf("\nfederated total: %d events (local check: %d)\n", total, local.Count())

	fmt.Println("\nper-vector mix across both sites:")
	for v := 0; v < attack.NumVectors; v++ {
		if perVec[v] > 0 {
			fmt.Printf("  %-8s %6d\n", attack.Vector(v), perVec[v])
		}
	}

	// Figure 1 is the daily combined series; print its first weeks.
	fmt.Println("\ndaily combined series (first 4 weeks):")
	for week := 0; week < 4; week++ {
		n := 0
		for d := 7 * week; d < 7*(week+1); d++ {
			n += perDay[d]
		}
		fmt.Printf("  week %d: %4d events\n", week+1, n)
	}

	// Counting queries ship index partials, not events: the bytes on
	// the wire are a tiny fraction of the captures they summarize.
	var sent, recv uint64
	for _, r := range []*federation.RemoteStore{ra, rb} {
		s, v := r.WireBytes()
		sent, recv = sent+s, recv+v
	}
	fmt.Printf("\nwire traffic for the whole aggregate: %d bytes out, %d back\n", sent, recv)

	// Iteration terminals do fetch events — as DOSEVT02 segments opened
	// zero-copy — e.g. to inspect one victim across both vantages.
	events, err := fed.Target(mostAttacked(perDayStore(sc))).Events()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("events on the most-attacked target, fetched across sites: %d\n", len(events))
}

// serveSite starts a federation server for st on a loopback listener
// and returns its address.
func serveSite(st *attack.Store) string {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go federation.NewServer(st).Serve(l)
	return l.Addr().String()
}

// perDayStore joins the scenario's stores for the target scan below.
func perDayStore(sc *dossim.Scenario) *attack.Query {
	return attack.QueryStores(sc.Telescope, sc.Honeypot)
}

// mostAttacked returns the target with the most events.
func mostAttacked(q *attack.Query) (best netx.Addr) {
	counts := map[netx.Addr]int{}
	for e := range q.Iter() {
		counts[e.Target]++
	}
	max := 0
	for t, n := range counts {
		if n > max || (n == max && t < best) {
			best, max = t, n
		}
	}
	return best
}

// Backscatter: craft the raw packets a DoS victim scatters toward a
// network telescope during a randomly spoofed SYN flood, write them to a
// pcap file, read the capture back, and classify it with the Moore et al.
// pipeline — the full §3.1.1 path on real bytes. Run with:
//
//	go run ./examples/backscatter
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"
	"time"

	"doscope/internal/attack"
	"doscope/internal/netx"
	"doscope/internal/packet"
	"doscope/internal/pcap"
	"doscope/internal/telescope"
)

func main() {
	darknet := netx.MustParsePrefix("44.0.0.0/8")
	victim := netx.MustParseAddr("203.0.113.80")
	rng := rand.New(rand.NewSource(7))

	// 1. The victim of a spoofed SYN flood answers every SYN with a
	// SYN/ACK to the spoofed source. Uniformly random spoofing means
	// 1/256 of those SYN/ACKs land in a /8 darknet.
	var capture bytes.Buffer
	w, err := pcap.NewWriter(&capture, pcap.LinkTypeRaw, 65535)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Unix(attack.WindowStart, 0).UTC()
	buf := packet.NewSerializeBuffer()
	opts := packet.SerializeOptions{FixLengths: true, ComputeChecksums: true}
	const packets = 3000
	for i := 0; i < packets; i++ {
		dst := darknet.First() + netx.Addr(rng.Int63n(int64(darknet.NumAddrs())))
		ip := &packet.IPv4{TTL: 60, Protocol: packet.ProtocolTCP, Src: victim, Dst: dst}
		tcp := &packet.TCP{
			SrcPort: 80, DstPort: uint16(1024 + rng.Intn(60000)),
			Seq: rng.Uint32(), Flags: packet.TCPSyn | packet.TCPAck, Window: 14600,
		}
		tcp.SetNetworkLayer(ip.Src, ip.Dst)
		if err := packet.SerializeLayers(buf, opts, ip, tcp); err != nil {
			log.Fatal(err)
		}
		ts := start.Add(time.Duration(i) * 600 * time.Second / packets) // 10-minute flood
		if err := w.WritePacket(ts, buf.Bytes()); err != nil {
			log.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d backscatter packets (%d bytes of pcap)\n", packets, capture.Len())

	// 2. Replay the capture through the telescope classifier.
	r, err := pcap.NewReader(&capture)
	if err != nil {
		log.Fatal(err)
	}
	classifier := telescope.New(telescope.DefaultConfig(darknet))
	for {
		hdr, data, err := r.Next()
		if err != nil {
			break
		}
		classifier.ProcessPacket(hdr.Timestamp.Unix(), data)
	}
	classifier.Flush()

	// 3. The classifier reconstructs the attack.
	for _, e := range classifier.Events() {
		fmt.Printf("attack on %v: vector=%v port=%v packets=%d duration=%ds max %.1f pps at the telescope\n",
			e.Target, e.Vector, e.Ports, e.Packets, e.Duration(), e.MaxPPS)
		fmt.Printf("estimated rate at the victim: %.0f pps (x256, §3.1.1)\n", e.EstimatedVictimPPS())
	}
}
